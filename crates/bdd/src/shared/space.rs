//! The `Sync` heart of the shared-memory engine: one [`SharedSpace`] holds
//! the concurrent unique table, the lossy computed cache and the atomic
//! budget governor; any number of participants (the entry thread plus the
//! work-stealing workers) recurse over it simultaneously through per-thread
//! [`OpCtx`] handles.
//!
//! The recursion functions here mirror the sequential operator core in
//! `apply.rs`/`quant.rs` **exactly** — same terminal rules, same cache-key
//! normalisation (commutative operand sort, XOR parity factoring, ITE
//! standard triples), same `mk` canonicalisation — so a result computed by
//! any interleaving of threads is the same canonical node the sequential
//! engine would build. That structural fact is what makes verdicts
//! bit-identical across thread counts: schedules change *when* nodes are
//! built, never *which* function a root edge denotes.
//!
//! Step accounting is batched: each participant charges a thread-local
//! counter and flushes it to the global atomic every [`STEP_BATCH`] steps,
//! so a step limit trips within `threads * STEP_BATCH` steps of the exact
//! point — documented slack in exchange for keeping the hot path free of
//! contended `fetch_add`s. Node budgets have no slack at all: the unique
//! table *reserves* a unit of the cap before each claim CAS and rolls the
//! reservation back on failure, so the limit is exact under contention.

use super::cache::SharedCache;
use super::steal::{Runtime, Task, TaskKind};
use super::table::SharedTable;
use crate::budget::BudgetExceeded;
use crate::cache::Op;
use crate::manager::{FALSE, TRUE};
use bbec_trace::Progress;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::time::Instant;

/// Steps charged locally before flushing to the global counter.
const STEP_BATCH: u32 = 64;

pub(super) struct SharedSpace {
    pub(super) table: SharedTable,
    pub(super) cache: SharedCache,
    /// Occupancy cap (terminal included); `usize::MAX` = unlimited.
    node_limit: AtomicUsize,
    /// Step cap for the current window; `u64::MAX` = unlimited.
    max_steps: AtomicU64,
    /// Cumulative apply steps over the space's lifetime.
    pub(super) steps: AtomicU64,
    /// `steps` value when the current budget window was armed.
    window_start: AtomicU64,
    deadline: RwLock<Option<Instant>>,
    /// Cross-thread abort: set with the first budget error so every
    /// participant fails fast instead of completing doomed subproblems.
    abort: AtomicBool,
    /// While set, charge() ignores the cross-thread abort flag: the owner's
    /// infallible wrappers lift the caps for one operation, and an abort
    /// raised meanwhile by a still-budgeted [`super::SharedHandle`] driver
    /// must fail *that driver*, not the owner's unbudgeted op (whose
    /// infallibility the wrappers `expect`). Owner-exclusive: only
    /// `run_unbudgeted` toggles it, and only one owner op runs at a time.
    caps_lifted: AtomicBool,
    abort_reason: Mutex<Option<BudgetExceeded>>,
    pub(super) var_count: AtomicUsize,
}

impl SharedSpace {
    pub(super) fn new(table_bits: u32, cache_bits: u32) -> SharedSpace {
        SharedSpace {
            table: SharedTable::new(table_bits),
            cache: SharedCache::with_capacity_bits(cache_bits),
            node_limit: AtomicUsize::new(usize::MAX),
            max_steps: AtomicU64::new(u64::MAX),
            steps: AtomicU64::new(0),
            window_start: AtomicU64::new(0),
            deadline: RwLock::new(None),
            abort: AtomicBool::new(false),
            caps_lifted: AtomicBool::new(false),
            abort_reason: Mutex::new(None),
            var_count: AtomicUsize::new(0),
        }
    }

    /// Installs budget caps without touching the step window. Caller must
    /// be quiescent (no op in flight). The infallible operation wrappers
    /// use this to lift the caps temporarily — steps still accumulate, so
    /// restoring the caps resumes the same accounting window, exactly like
    /// the sequential `run_unbudgeted`.
    pub(super) fn set_limits(
        &self,
        node_limit: Option<usize>,
        max_steps: Option<u64>,
        deadline: Option<Instant>,
    ) {
        // The table counts the terminal in its occupancy; the public limit
        // counts live nodes excluding constants, like the classic manager.
        self.node_limit
            .store(node_limit.map_or(usize::MAX, |l| l.saturating_add(1)), Ordering::Relaxed);
        self.max_steps.store(max_steps.unwrap_or(u64::MAX), Ordering::Relaxed);
        *self.deadline.write().unwrap() = deadline;
    }

    /// Opens a fresh step-accounting window (the `set_budget` semantics).
    pub(super) fn reset_window(&self) {
        self.window_start.store(self.steps.load(Ordering::Relaxed), Ordering::Relaxed);
    }

    /// One immediate deadline poll; entry threads run this per operation so
    /// an expired deadline aborts even workloads of many tiny operations
    /// (whose step counts never reach the amortised poll boundary).
    pub(super) fn check_deadline(&self) -> Result<(), BudgetExceeded> {
        if let Some(deadline) = *self.deadline.read().unwrap() {
            if Instant::now() >= deadline {
                let e = BudgetExceeded::Deadline;
                self.record_abort(e);
                return Err(e);
            }
        }
        Ok(())
    }

    pub(super) fn node_limit(&self) -> usize {
        self.node_limit.load(Ordering::Relaxed)
    }

    /// See the `caps_lifted` field. Workers consult this live (not a ctx
    /// snapshot) so the forked subproblems of an unbudgeted op are just as
    /// abort-blind as its entry thread.
    pub(super) fn set_caps_lifted(&self, lifted: bool) {
        self.caps_lifted.store(lifted, Ordering::Release);
    }

    #[inline]
    pub(super) fn caps_lifted(&self) -> bool {
        self.caps_lifted.load(Ordering::Relaxed)
    }

    pub(super) fn record_abort(&self, e: BudgetExceeded) {
        let mut reason = self.abort_reason.lock().unwrap();
        if reason.is_none() {
            *reason = Some(e);
        }
        self.abort.store(true, Ordering::Release);
    }

    #[inline]
    pub(super) fn aborted(&self) -> bool {
        self.abort.load(Ordering::Relaxed)
    }

    /// The first recorded abort reason. Only meaningful after an abort.
    pub(super) fn reason(&self) -> BudgetExceeded {
        self.abort_reason.lock().unwrap().unwrap_or(BudgetExceeded::Deadline)
    }

    pub(super) fn clear_abort(&self) {
        *self.abort_reason.lock().unwrap() = None;
        self.abort.store(false, Ordering::Release);
    }

    /// Live nodes (terminal excluded), matching [`crate::BddStats`] units.
    pub(super) fn live(&self) -> usize {
        self.table.occupancy().saturating_sub(1)
    }

    /// Hash-conses `(level, lo, hi)` into a tagged edge, applying the same
    /// canonicalisation as the sequential `mk_checked`: equal children
    /// collapse, and a complemented then-edge is flipped off both children
    /// and returned on the result edge instead.
    #[inline]
    pub(super) fn mk(
        &self,
        level: u32,
        lo: u32,
        hi: u32,
        node_limit: usize,
    ) -> Result<u32, BudgetExceeded> {
        if lo == hi {
            return Ok(lo);
        }
        let flip = hi & 1;
        let (lo, hi) = (lo ^ flip, hi ^ flip);
        debug_assert!(
            self.level_e(lo) > level && self.level_e(hi) > level,
            "children must be below"
        );
        let idx = self.table.get_or_insert(level, lo, hi, node_limit)?;
        Ok((idx << 1) | flip)
    }

    /// Level of the node a tagged edge points at.
    #[inline]
    pub(super) fn level_e(&self, edge: u32) -> u32 {
        self.table.level(edge >> 1)
    }

    /// Cofactors of `f` at `level` (identity if `f` starts below).
    #[inline]
    pub(super) fn cofactors_at(&self, f: u32, level: u32) -> (u32, u32) {
        let (l, lo, hi) = self.table.node(f >> 1);
        if l == level {
            let tag = f & 1;
            (lo ^ tag, hi ^ tag)
        } else {
            (f, f)
        }
    }

    /// Top level of `{a, b}` plus both cofactor pairs at that level.
    #[inline]
    fn cofactor_pair(&self, a: u32, b: u32) -> (u32, u32, u32, u32, u32) {
        let level = self.level_e(a).min(self.level_e(b));
        let (a0, a1) = self.cofactors_at(a, level);
        let (b0, b1) = self.cofactors_at(b, level);
        (level, a0, a1, b0, b1)
    }

    /// Fraction of the tightest budget dimension consumed, for progress.
    fn budget_fraction(&self) -> Option<f64> {
        let mut frac: Option<f64> = None;
        let ms = self.max_steps.load(Ordering::Relaxed);
        if ms != u64::MAX && ms > 0 {
            let used = self
                .steps
                .load(Ordering::Relaxed)
                .saturating_sub(self.window_start.load(Ordering::Relaxed));
            frac = Some(used as f64 / ms as f64);
        }
        let nl = self.node_limit.load(Ordering::Relaxed);
        if nl != usize::MAX && nl > 0 {
            let f = self.table.occupancy() as f64 / nl as f64;
            frac = Some(frac.map_or(f, |g| g.max(f)));
        }
        frac.map(|f| f.min(1.0))
    }
}

/// One participant's view of an in-flight operation: the space, the
/// work-stealing runtime (absent in single-thread mode), this thread's
/// deque index, and the batched step accounting.
pub(super) struct OpCtx<'a> {
    pub(super) space: &'a SharedSpace,
    rt: Option<&'a Runtime>,
    me: usize,
    cutoff: u32,
    node_limit: usize,
    /// Steps charged but not yet flushed to the global counter.
    pending: u32,
    /// Global step total as of this ctx's last flush; with `pending` it
    /// gives a cheap local estimate of the window so tight step caps trip
    /// without reading the contended counter on every charge.
    flushed: u64,
    /// Snapshots of the budget window, loaded once per operation (budgets
    /// only change between operations).
    max_steps: u64,
    window_start: u64,
    progress: Option<&'a Progress>,
}

impl<'a> OpCtx<'a> {
    pub(super) fn new(
        space: &'a SharedSpace,
        rt: Option<&'a Runtime>,
        me: usize,
        progress: Option<&'a Progress>,
    ) -> OpCtx<'a> {
        OpCtx {
            space,
            rt,
            me,
            cutoff: rt.map_or(0, |r| r.cutoff),
            node_limit: space.node_limit(),
            pending: 0,
            flushed: space.steps.load(Ordering::Relaxed),
            max_steps: space.max_steps.load(Ordering::Relaxed),
            window_start: space.window_start.load(Ordering::Relaxed),
            progress,
        }
    }

    /// Charges one apply step (the cache-miss recursion unit, identical to
    /// the sequential `charge_step` call sites).
    #[inline]
    fn charge(&mut self) -> Result<(), BudgetExceeded> {
        if self.space.aborted() && !self.space.caps_lifted() {
            return Err(self.space.reason());
        }
        self.pending += 1;
        if self.pending == STEP_BATCH
            || (self.max_steps != u64::MAX
                && (self.flushed + u64::from(self.pending)).saturating_sub(self.window_start)
                    > self.max_steps)
        {
            self.flush_batch()?;
        }
        Ok(())
    }

    /// Publishes the local step batch, checks the step cap, and fires the
    /// amortised pulse whenever the global total crosses a 1024-step
    /// boundary — cumulative across operations, like the sequential
    /// manager's lifetime step phase, so even workloads of many small
    /// operations keep polling the deadline.
    fn flush_batch(&mut self) -> Result<(), BudgetExceeded> {
        let batch = u64::from(self.pending);
        self.pending = 0;
        let total = self.space.steps.fetch_add(batch, Ordering::Relaxed) + batch;
        self.flushed = total;
        let limit = self.space.max_steps.load(Ordering::Relaxed);
        if limit != u64::MAX && total.saturating_sub(self.window_start) > limit {
            let e = BudgetExceeded::Steps { limit };
            self.space.record_abort(e);
            return Err(e);
        }
        if total >> 10 != (total - batch) >> 10 {
            self.pulse()?;
        }
        Ok(())
    }

    /// Flushes any remainder at the end of an op so telemetry between ops
    /// is exact. Crossing a pulse boundary here still records an abort (the
    /// next budgeted charge observes it); the error itself has nowhere to
    /// surface at op teardown.
    pub(super) fn flush(&mut self) {
        if self.pending > 0 {
            let batch = u64::from(self.pending);
            self.pending = 0;
            let total = self.space.steps.fetch_add(batch, Ordering::Relaxed) + batch;
            self.flushed = total;
            if total >> 10 != (total - batch) >> 10 {
                let _ = self.pulse();
            }
        }
    }

    /// Amortised slow path: deadline poll and heartbeat, every 1024 steps.
    #[cold]
    fn pulse(&mut self) -> Result<(), BudgetExceeded> {
        if let Some(progress) = self.progress {
            if progress.enabled() {
                progress.tick(1024, self.space.live() as u64, self.space.budget_fraction());
            }
        }
        if let Some(deadline) = *self.space.deadline.read().unwrap() {
            if Instant::now() >= deadline {
                let e = BudgetExceeded::Deadline;
                self.space.record_abort(e);
                return Err(e);
            }
        }
        Ok(())
    }

    /// Budgeted `mk` that records an abort so sibling threads fail fast.
    #[inline]
    fn mk(&self, level: u32, lo: u32, hi: u32) -> Result<u32, BudgetExceeded> {
        match self.space.mk(level, lo, hi, self.node_limit) {
            Ok(r) => Ok(r),
            Err(e) => {
                self.space.record_abort(e);
                Err(e)
            }
        }
    }

    /// Whether a recursion at `depth` should fork its second branch.
    #[inline]
    fn should_fork(&self, depth: u32) -> bool {
        depth < self.cutoff && self.rt.is_some()
    }

    /// Pushes a forked subproblem onto this participant's deque.
    fn spawn(&self, kind: TaskKind, depth: u32) -> Arc<Task> {
        let task = Arc::new(Task::new(kind, depth));
        self.rt.expect("spawn without runtime").push(self.me, Arc::clone(&task));
        task
    }

    /// Waits for a forked task: claims and runs it inline if nobody stole
    /// it (the common, allocation-only-overhead case), otherwise helps by
    /// running other pending tasks until the thief publishes the result.
    fn join(&mut self, task: &Arc<Task>) -> Result<u32, BudgetExceeded> {
        if task.claim() {
            let r = execute(self, task.kind, task.depth);
            task.complete(r);
            return r;
        }
        loop {
            if let Some(done) = task.result_if_done() {
                return done.map_err(|()| self.space.reason());
            }
            let stolen = self.rt.and_then(|rt| rt.pop_or_steal(self.me));
            match stolen {
                Some(t) => run_claimed(self, &t),
                None => {
                    std::hint::spin_loop();
                    std::thread::yield_now();
                }
            }
        }
    }
}

/// Runs a task already claimed by this participant and publishes the result.
///
/// Execution is panic-isolated: a panic inside the recursion still records
/// an abort and completes the task (poisoned) before re-raising, so joiners
/// get [`BudgetExceeded::WorkerPanic`] instead of spinning forever on a
/// result that will never arrive. The re-raised panic then unwinds this
/// thread — a worker dies (its `running` guard fires, so `end_op` still
/// completes) and the entry thread propagates it to the caller.
pub(super) fn run_claimed(ctx: &mut OpCtx<'_>, task: &Task) {
    match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        execute(ctx, task.kind, task.depth)
    })) {
        Ok(r) => {
            if let Err(e) = r {
                // Belt and braces: every error path records before
                // propagating, but the task result only carries
                // ok/poisoned, so make sure the reason is global before
                // anyone reads the poison.
                ctx.space.record_abort(e);
            }
            task.complete(r);
        }
        Err(payload) => {
            ctx.space.record_abort(BudgetExceeded::WorkerPanic);
            task.complete(Err(BudgetExceeded::WorkerPanic));
            std::panic::resume_unwind(payload);
        }
    }
}

/// Dispatches a forked subproblem to its recursion.
fn execute(ctx: &mut OpCtx<'_>, kind: TaskKind, depth: u32) -> Result<u32, BudgetExceeded> {
    match kind {
        TaskKind::And(f, g) => and_rec(ctx, f, g, depth),
        TaskKind::Xor(f, g) => xor_rec(ctx, f, g, depth),
        TaskKind::Ite(f, g, h) => ite_rec(ctx, f, g, h, depth),
        TaskKind::Exists(f, cube) => exists_rec(ctx, f, cube, depth),
        TaskKind::AndExists(f, g, cube) => and_exists_rec(ctx, f, g, cube, depth),
    }
}

pub(super) fn and_rec(
    ctx: &mut OpCtx<'_>,
    f: u32,
    g: u32,
    depth: u32,
) -> Result<u32, BudgetExceeded> {
    if f == g {
        return Ok(f);
    }
    if f == FALSE || g == FALSE || f == (g ^ 1) {
        return Ok(FALSE);
    }
    if f == TRUE {
        return Ok(g);
    }
    if g == TRUE {
        return Ok(f);
    }
    let (a, b) = if f < g { (f, g) } else { (g, f) };
    if let Some(r) = ctx.space.cache.get(Op::And, a, b, 0) {
        return Ok(r);
    }
    ctx.charge()?;
    let (level, fa, fb, ga, gb) = ctx.space.cofactor_pair(a, b);
    let (lo, hi) = if ctx.should_fork(depth) {
        let task = ctx.spawn(TaskKind::And(fb, gb), depth + 1);
        let lo = and_rec(ctx, fa, ga, depth + 1);
        let hi = ctx.join(&task);
        (lo?, hi?)
    } else {
        (and_rec(ctx, fa, ga, depth + 1)?, and_rec(ctx, fb, gb, depth + 1)?)
    };
    let r = ctx.mk(level, lo, hi)?;
    ctx.space.cache.put(Op::And, a, b, 0, r);
    Ok(r)
}

pub(super) fn xor_rec(
    ctx: &mut OpCtx<'_>,
    f: u32,
    g: u32,
    depth: u32,
) -> Result<u32, BudgetExceeded> {
    // Complement parity factors out of XOR entirely, as in the sequential
    // engine: all four tag variants share one cache entry.
    let parity = (f ^ g) & 1;
    let (f, g) = (f & !1, g & !1);
    if f == g {
        return Ok(FALSE ^ parity);
    }
    if f == TRUE {
        return Ok(g ^ 1 ^ parity);
    }
    if g == TRUE {
        return Ok(f ^ 1 ^ parity);
    }
    let (a, b) = if f < g { (f, g) } else { (g, f) };
    let r = if let Some(r) = ctx.space.cache.get(Op::Xor, a, b, 0) {
        r
    } else {
        ctx.charge()?;
        let (level, fa, fb, ga, gb) = ctx.space.cofactor_pair(a, b);
        let (lo, hi) = if ctx.should_fork(depth) {
            let task = ctx.spawn(TaskKind::Xor(fb, gb), depth + 1);
            let lo = xor_rec(ctx, fa, ga, depth + 1);
            let hi = ctx.join(&task);
            (lo?, hi?)
        } else {
            (xor_rec(ctx, fa, ga, depth + 1)?, xor_rec(ctx, fb, gb, depth + 1)?)
        };
        let r = ctx.mk(level, lo, hi)?;
        ctx.space.cache.put(Op::Xor, a, b, 0, r);
        r
    };
    Ok(r ^ parity)
}

pub(super) fn ite_rec(
    ctx: &mut OpCtx<'_>,
    f: u32,
    g: u32,
    h: u32,
    depth: u32,
) -> Result<u32, BudgetExceeded> {
    if f == TRUE {
        return Ok(g);
    }
    if f == FALSE {
        return Ok(h);
    }
    // Standard-triple rewrites, identical to the sequential ite_rec.
    let mut g = g;
    let mut h = h;
    if g == f {
        g = TRUE;
    } else if g == (f ^ 1) {
        g = FALSE;
    }
    if h == f {
        h = FALSE;
    } else if h == (f ^ 1) {
        h = TRUE;
    }
    if g == h {
        return Ok(g);
    }
    if g == TRUE && h == FALSE {
        return Ok(f);
    }
    if g == FALSE && h == TRUE {
        return Ok(f ^ 1);
    }
    if g == TRUE {
        return Ok(and_rec(ctx, f ^ 1, h ^ 1, depth)? ^ 1);
    }
    if g == FALSE {
        return and_rec(ctx, f ^ 1, h, depth);
    }
    if h == FALSE {
        return and_rec(ctx, f, g, depth);
    }
    if h == TRUE {
        return Ok(and_rec(ctx, f, g ^ 1, depth)? ^ 1);
    }
    if h == (g ^ 1) {
        return Ok(xor_rec(ctx, f, g, depth)? ^ 1);
    }
    // Normalise complement tags off the selector and the then-arm.
    let mut f = f;
    if f & 1 == 1 {
        f ^= 1;
        std::mem::swap(&mut g, &mut h);
    }
    let complement = g & 1 == 1;
    if complement {
        g ^= 1;
        h ^= 1;
    }
    let r = if let Some(r) = ctx.space.cache.get(Op::Ite, f, g, h) {
        r
    } else {
        ctx.charge()?;
        let level = ctx.space.level_e(f).min(ctx.space.level_e(g)).min(ctx.space.level_e(h));
        let (f0, f1) = ctx.space.cofactors_at(f, level);
        let (g0, g1) = ctx.space.cofactors_at(g, level);
        let (h0, h1) = ctx.space.cofactors_at(h, level);
        let (lo, hi) = if ctx.should_fork(depth) {
            let task = ctx.spawn(TaskKind::Ite(f1, g1, h1), depth + 1);
            let lo = ite_rec(ctx, f0, g0, h0, depth + 1);
            let hi = ctx.join(&task);
            (lo?, hi?)
        } else {
            (ite_rec(ctx, f0, g0, h0, depth + 1)?, ite_rec(ctx, f1, g1, h1, depth + 1)?)
        };
        let r = ctx.mk(level, lo, hi)?;
        ctx.space.cache.put(Op::Ite, f, g, h, r);
        r
    };
    Ok(r ^ u32::from(complement))
}

pub(super) fn exists_rec(
    ctx: &mut OpCtx<'_>,
    f: u32,
    cube: u32,
    depth: u32,
) -> Result<u32, BudgetExceeded> {
    if f <= 1 || cube == TRUE {
        return Ok(f);
    }
    // Skip quantified variables above the top variable of f. Cubes are
    // positive conjunctions: their chain edges are always regular.
    let flevel = ctx.space.level_e(f);
    let mut c = cube;
    while ctx.space.level_e(c) < flevel {
        c = ctx.space.table.node(c >> 1).2;
    }
    if ctx.space.level_e(c) == super::table::TERMINAL_LEVEL {
        return Ok(f);
    }
    let cube = c;
    if let Some(r) = ctx.space.cache.get(Op::Exists, f, cube, 0) {
        return Ok(r);
    }
    ctx.charge()?;
    let (lo, hi) = ctx.space.cofactors_at(f, flevel);
    let r = if ctx.space.level_e(cube) == flevel {
        // Quantified level: the OR short-circuit makes this branch order
        // dependent for *work* (never for the result), so it stays
        // sequential; forking happens at the pass-through levels below.
        let rest = ctx.space.table.node(cube >> 1).2;
        let a = exists_rec(ctx, lo, rest, depth + 1)?;
        if a == TRUE {
            a
        } else {
            let b = exists_rec(ctx, hi, rest, depth + 1)?;
            and_rec(ctx, a ^ 1, b ^ 1, depth)? ^ 1
        }
    } else if ctx.should_fork(depth) {
        let task = ctx.spawn(TaskKind::Exists(hi, cube), depth + 1);
        let a = exists_rec(ctx, lo, cube, depth + 1);
        let b = ctx.join(&task);
        ctx.mk(flevel, a?, b?)?
    } else {
        let a = exists_rec(ctx, lo, cube, depth + 1)?;
        let b = exists_rec(ctx, hi, cube, depth + 1)?;
        ctx.mk(flevel, a, b)?
    };
    ctx.space.cache.put(Op::Exists, f, cube, 0, r);
    Ok(r)
}

pub(super) fn and_exists_rec(
    ctx: &mut OpCtx<'_>,
    f: u32,
    g: u32,
    cube: u32,
    depth: u32,
) -> Result<u32, BudgetExceeded> {
    if f == FALSE || g == FALSE || f == (g ^ 1) {
        return Ok(FALSE);
    }
    if cube == TRUE {
        return and_rec(ctx, f, g, depth);
    }
    if f == TRUE {
        return exists_rec(ctx, g, cube, depth);
    }
    if g == TRUE {
        return exists_rec(ctx, f, cube, depth);
    }
    let (f, g) = if f <= g { (f, g) } else { (g, f) };
    let top = ctx.space.level_e(f).min(ctx.space.level_e(g));
    let mut c = cube;
    while ctx.space.level_e(c) < top {
        c = ctx.space.table.node(c >> 1).2;
    }
    if ctx.space.level_e(c) == super::table::TERMINAL_LEVEL {
        return and_rec(ctx, f, g, depth);
    }
    let cube = c;
    if let Some(r) = ctx.space.cache.get(Op::AndExists, f, g, cube) {
        return Ok(r);
    }
    ctx.charge()?;
    let (f0, f1) = ctx.space.cofactors_at(f, top);
    let (g0, g1) = ctx.space.cofactors_at(g, top);
    let r = if ctx.space.level_e(cube) == top {
        let rest = ctx.space.table.node(cube >> 1).2;
        let a = and_exists_rec(ctx, f0, g0, rest, depth + 1)?;
        if a == TRUE {
            a
        } else {
            let b = and_exists_rec(ctx, f1, g1, rest, depth + 1)?;
            and_rec(ctx, a ^ 1, b ^ 1, depth)? ^ 1
        }
    } else if ctx.should_fork(depth) {
        let task = ctx.spawn(TaskKind::AndExists(f1, g1, cube), depth + 1);
        let a = and_exists_rec(ctx, f0, g0, cube, depth + 1);
        let b = ctx.join(&task);
        ctx.mk(top, a?, b?)?
    } else {
        let a = and_exists_rec(ctx, f0, g0, cube, depth + 1)?;
        let b = and_exists_rec(ctx, f1, g1, cube, depth + 1)?;
        ctx.mk(top, a, b)?
    };
    ctx.space.cache.put(Op::AndExists, f, g, cube, r);
    Ok(r)
}

/// Composition runs on a regular (uncomplemented) `f` edge; the shared
/// engine never reorders, so variable `var` *is* level `var` and the
/// projection at a level is a plain `mk`.
pub(super) fn compose_rec(
    ctx: &mut OpCtx<'_>,
    f: u32,
    var: u32,
    g: u32,
    depth: u32,
) -> Result<u32, BudgetExceeded> {
    debug_assert_eq!(f & 1, 0);
    if f <= 1 || ctx.space.level_e(f) > var {
        return Ok(f);
    }
    if let Some(r) = ctx.space.cache.get(Op::Compose, f, g, var) {
        return Ok(r);
    }
    ctx.charge()?;
    let (level, lo, hi) = {
        let (l, lo, hi) = ctx.space.table.node(f >> 1);
        let tag = f & 1;
        (l, lo ^ tag, hi ^ tag)
    };
    let r = if level == var {
        ite_rec(ctx, g, hi, lo, depth)?
    } else {
        let rlo = {
            let parity = lo & 1;
            compose_rec(ctx, lo ^ parity, var, g, depth)? ^ parity
        };
        let rhi = {
            let parity = hi & 1;
            compose_rec(ctx, hi ^ parity, var, g, depth)? ^ parity
        };
        let proj = ctx.mk(level, FALSE, TRUE)?;
        ite_rec(ctx, proj, rhi, rlo, depth)?
    };
    ctx.space.cache.put(Op::Compose, f, g, var, r);
    Ok(r)
}
