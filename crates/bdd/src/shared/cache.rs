//! The lossy lock-free computed table for the shared-memory engine.
//!
//! Same 7-op De Morgan key scheme as the single-owner [`crate::cache::OpCache`]
//! — `(Op, a, b, c) -> result` over tagged edges — but stored as a
//! fixed-capacity direct-mapped array of **seqlock-stamped** entries so any
//! number of threads can read and write without locks:
//!
//! ```text
//! stamp: [ sequence : 64 ]          0 = never written, odd = write in flight
//! w0:    [ a : 32 | b : 32 ]
//! w1:    [ c : 32 | op : 32 ]
//! w2:    [ result : 32 ]
//! ```
//!
//! A **writer** loads the stamp; if it is odd another writer owns the entry
//! and this write is simply dropped (the cache is lossy — correctness never
//! depends on a `put` landing). Otherwise it CASes `s -> s+1` (claim),
//! issues a release fence so the odd stamp becomes visible **before** any
//! data word (the seqlock `smp_wmb`; without it a weakly-ordered machine
//! may publish new key words under the old even stamp, and a racing reader
//! would validate a new-key/stale-result entry), stores the three words
//! relaxed, and publishes with a release store of `s+2`. A **reader** loads
//! the stamp (acquire), reads the words relaxed, fences, and re-reads the
//! stamp: the hit counts only if both loads agree on an even nonzero value
//! *and* the full key matches — a torn read can only produce a miss, never
//! a wrong result. Collisions overwrite
//! (direct-mapped, newest wins), matching the sequential cache's
//! drop-on-pressure spirit without its global eviction.
//!
//! Entries name unique-table indices, and the shared table never frees or
//! moves nodes, so a stale entry is still a *correct* entry — the reason
//! this cache needs no generation tags or clearing protocol.

use crate::cache::{clamp_cache_bits, Op};
use std::sync::atomic::{fence, AtomicU64, Ordering};

pub(crate) struct SharedCache {
    stamps: Box<[AtomicU64]>,
    /// Three words per entry, indexed `3*i ..= 3*i+2`.
    words: Box<[AtomicU64]>,
    mask: usize,
    hits: [AtomicU64; Op::COUNT],
    misses: [AtomicU64; Op::COUNT],
}

#[inline]
fn slot(op: Op, a: u32, b: u32, c: u32, mask: usize) -> usize {
    let mut h = (a as u64) | ((b as u64) << 32);
    h ^= (c as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    h = h.wrapping_add(op.index() as u64);
    h = h.wrapping_mul(0x2545_F491_4F6C_DD1D);
    ((h >> 29) as usize) & mask
}

impl SharedCache {
    pub(crate) fn with_capacity_bits(bits: u32) -> SharedCache {
        let n = 1usize << clamp_cache_bits(bits).min(super::MAX_SHARED_CACHE_BITS);
        SharedCache {
            stamps: (0..n).map(|_| AtomicU64::new(0)).collect(),
            words: (0..3 * n).map(|_| AtomicU64::new(0)).collect(),
            mask: n - 1,
            hits: std::array::from_fn(|_| AtomicU64::new(0)),
            misses: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    pub(crate) fn capacity_bits(&self) -> u32 {
        (self.mask + 1).trailing_zeros()
    }

    #[inline]
    pub(crate) fn get(&self, op: Op, a: u32, b: u32, c: u32) -> Option<u32> {
        let i = slot(op, a, b, c, self.mask);
        let s1 = self.stamps[i].load(Ordering::Acquire);
        if s1 != 0 && s1 & 1 == 0 {
            let w0 = self.words[3 * i].load(Ordering::Relaxed);
            let w1 = self.words[3 * i + 1].load(Ordering::Relaxed);
            let w2 = self.words[3 * i + 2].load(Ordering::Relaxed);
            fence(Ordering::Acquire);
            let s2 = self.stamps[i].load(Ordering::Relaxed);
            if s1 == s2
                && w0 == (a as u64) | ((b as u64) << 32)
                && w1 == (c as u64) | ((op.index() as u64) << 32)
            {
                self.hits[op.index()].fetch_add(1, Ordering::Relaxed);
                return Some(w2 as u32);
            }
        }
        self.misses[op.index()].fetch_add(1, Ordering::Relaxed);
        None
    }

    #[inline]
    pub(crate) fn put(&self, op: Op, a: u32, b: u32, c: u32, result: u32) {
        let i = slot(op, a, b, c, self.mask);
        let s = self.stamps[i].load(Ordering::Relaxed);
        if s & 1 != 0 {
            return; // another writer owns the entry; drop this put
        }
        if self.stamps[i].compare_exchange(s, s + 1, Ordering::AcqRel, Ordering::Relaxed).is_err() {
            return; // lost the claim race; drop this put
        }
        // Order the odd stamp before the data words (see the module doc):
        // a reader that observes any new word must then observe a stamp
        // change and retry, so it can never validate a half-written entry.
        fence(Ordering::Release);
        self.words[3 * i].store((a as u64) | ((b as u64) << 32), Ordering::Relaxed);
        self.words[3 * i + 1].store((c as u64) | ((op.index() as u64) << 32), Ordering::Relaxed);
        self.words[3 * i + 2].store(result as u64, Ordering::Relaxed);
        self.stamps[i].store(s + 2, Ordering::Release);
    }

    /// Cumulative per-operation `(name, hits, misses)` rows.
    pub(crate) fn stats_by_op(&self) -> [(&'static str, u64, u64); Op::COUNT] {
        Op::all().map(|op| {
            (
                op.name(),
                self.hits[op.index()].load(Ordering::Relaxed),
                self.misses[op.index()].load(Ordering::Relaxed),
            )
        })
    }

    pub(crate) fn hits(&self) -> u64 {
        self.hits.iter().map(|h| h.load(Ordering::Relaxed)).sum()
    }

    pub(crate) fn misses(&self) -> u64 {
        self.misses.iter().map(|m| m.load(Ordering::Relaxed)).sum()
    }

    /// Invalidates every entry and zeroes the counters by resetting the
    /// stamps; the data words can stay stale because a zero stamp is an
    /// unconditional miss. Quiescent callers only (pool recycling).
    pub(crate) fn reset(&self) {
        for s in self.stamps.iter() {
            s.store(0, Ordering::Relaxed);
        }
        for h in &self.hits {
            h.store(0, Ordering::Relaxed);
        }
        for m in &self.misses {
            m.store(0, Ordering::Relaxed);
        }
        fence(Ordering::Release);
    }
}

impl std::fmt::Debug for SharedCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SharedCache")
            .field("capacity_bits", &self.capacity_bits())
            .field("hits", &self.hits())
            .field("misses", &self.misses())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn round_trips_and_distinguishes_ops() {
        let c = SharedCache::with_capacity_bits(10);
        assert_eq!(c.get(Op::And, 2, 3, 0), None);
        c.put(Op::And, 2, 3, 0, 7);
        assert_eq!(c.get(Op::And, 2, 3, 0), Some(7));
        assert_eq!(c.get(Op::Xor, 2, 3, 0), None);
        assert_eq!(c.hits(), 1);
        assert_eq!(c.misses(), 2);
        c.reset();
        assert_eq!(c.get(Op::And, 2, 3, 0), None);
        assert_eq!((c.hits(), c.misses()), (0, 1));
    }

    /// Stress the seqlock: 8 threads write conflicting entries into a tiny
    /// (64-slot) cache while reading back; every observed hit must be the
    /// exact value some thread stored for that exact key — a torn entry
    /// that survives key comparison would fail the `v == a + b` check.
    #[test]
    fn torn_reads_are_impossible() {
        let iters = if std::env::var_os("BBEC_STRESS").is_some() { 30 } else { 6 };
        for _ in 0..iters {
            let c = Arc::new(SharedCache::with_capacity_bits(6));
            std::thread::scope(|scope| {
                for tid in 0..8u32 {
                    let c = Arc::clone(&c);
                    scope.spawn(move || {
                        for k in 0..4000u32 {
                            let a = (k * 7 + tid) % 97;
                            let b = (k * 13) % 89;
                            c.put(Op::And, a, b, 0, a + b);
                            if let Some(v) = c.get(Op::And, b, a, 0) {
                                assert_eq!(v, a + b, "torn or misfiled cache entry");
                            }
                            if let Some(v) = c.get(Op::And, a, b, 0) {
                                assert_eq!(v, a + b, "torn or misfiled cache entry");
                            }
                        }
                    });
                }
            });
        }
    }
}
