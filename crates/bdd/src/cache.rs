//! The computed table: memoisation for the recursive operator core.

use crate::hasher::FxBuildHasher;
use std::collections::HashMap;

/// Operation tags for computed-table keys.
///
/// With complement edges the operator set is smaller than the public API:
/// `not` is a tag flip (no table traffic at all), `or`/`nand`/`nor` reach
/// the table as `and` through De Morgan, `xnor` as `xor`, and `forall` as
/// `exists` through quantifier duality — so every dual pair shares one set
/// of cache entries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub(crate) enum Op {
    And,
    Xor,
    Ite,
    Exists,
    /// Functional composition; the substituted variable is the third key slot.
    Compose,
    /// Generalised cofactor / restrict against a cube.
    Restrict,
    /// Relational product: existential quantification of a conjunction.
    AndExists,
}

impl Op {
    /// Number of operation kinds (the per-op stat arrays are this long).
    pub(crate) const COUNT: usize = 7;

    #[inline]
    pub(crate) fn index(self) -> usize {
        self as usize
    }

    /// Stable lower-case name used in tracer counter names.
    pub(crate) fn name(self) -> &'static str {
        match self {
            Op::And => "and",
            Op::Xor => "xor",
            Op::Ite => "ite",
            Op::Exists => "exists",
            Op::Compose => "compose",
            Op::Restrict => "restrict",
            Op::AndExists => "and_exists",
        }
    }

    pub(crate) fn all() -> [Op; Op::COUNT] {
        [Op::And, Op::Xor, Op::Ite, Op::Exists, Op::Compose, Op::Restrict, Op::AndExists]
    }
}

/// Default computed-table capacity exponent: `2^22` (~4M) entries.
///
/// Large enough that typical checks never hit the cap (bounded eviction is
/// a memory-safety valve, not a tuning default), small enough to bound a
/// runaway worker to a predictable footprint.
pub const DEFAULT_CACHE_BITS: u32 = 22;

/// Smallest accepted capacity exponent (1024 entries).
pub const MIN_CACHE_BITS: u32 = 10;

/// Largest accepted capacity exponent (2^30 entries).
pub const MAX_CACHE_BITS: u32 = 30;

/// Clamps a requested capacity exponent into the supported range.
pub fn clamp_cache_bits(bits: u32) -> u32 {
    bits.clamp(MIN_CACHE_BITS, MAX_CACHE_BITS)
}

/// Memo table shared by all recursive operations.
///
/// Entries hold *unprotected* node indices, so the cache must be cleared
/// whenever nodes may be reclaimed (garbage collection, reordering).
/// Capacity is bounded at `2^capacity_bits` entries; inserting into a full
/// table drops the whole table (a deterministic, allocation-free eviction
/// policy — the recursion simply recomputes, charging steps as usual).
/// Hit/miss counters are kept per operation kind so the tracer can report
/// cache effectiveness per operator; the aggregate accessors sum them.
#[derive(Debug)]
pub(crate) struct OpCache {
    map: HashMap<(Op, u32, u32, u32), u32, FxBuildHasher>,
    capacity: usize,
    evictions: u64,
    hits: [u64; Op::COUNT],
    misses: [u64; Op::COUNT],
}

impl Default for OpCache {
    fn default() -> Self {
        OpCache::with_capacity_bits(DEFAULT_CACHE_BITS)
    }
}

impl OpCache {
    pub(crate) fn new() -> Self {
        OpCache::default()
    }

    pub(crate) fn with_capacity_bits(bits: u32) -> Self {
        OpCache {
            map: HashMap::default(),
            capacity: 1usize << clamp_cache_bits(bits),
            evictions: 0,
            hits: [0; Op::COUNT],
            misses: [0; Op::COUNT],
        }
    }

    /// Rebounds the table to `2^bits` entries (clamped), evicting every
    /// current entry if it no longer fits.
    pub(crate) fn set_capacity_bits(&mut self, bits: u32) {
        self.capacity = 1usize << clamp_cache_bits(bits);
        if self.map.len() > self.capacity {
            self.map.clear();
            self.evictions += 1;
        }
    }

    pub(crate) fn capacity_bits(&self) -> u32 {
        self.capacity.trailing_zeros()
    }

    /// Full-table evictions forced by the capacity bound so far.
    pub(crate) fn evictions(&self) -> u64 {
        self.evictions
    }

    #[inline]
    pub(crate) fn get(&mut self, op: Op, a: u32, b: u32, c: u32) -> Option<u32> {
        let r = self.map.get(&(op, a, b, c)).copied();
        if r.is_some() {
            self.hits[op.index()] += 1;
        } else {
            self.misses[op.index()] += 1;
        }
        r
    }

    #[inline]
    pub(crate) fn put(&mut self, op: Op, a: u32, b: u32, c: u32, result: u32) {
        if self.map.len() >= self.capacity {
            self.map.clear();
            self.evictions += 1;
        }
        self.map.insert((op, a, b, c), result);
    }

    pub(crate) fn clear(&mut self) {
        self.map.clear();
    }

    /// Restores the table to its just-constructed state while keeping the
    /// map's allocation warm: entries, per-op counters and the eviction
    /// total all go to zero; the capacity bound is preserved.
    pub(crate) fn reset(&mut self) {
        self.map.clear();
        self.evictions = 0;
        self.hits = [0; Op::COUNT];
        self.misses = [0; Op::COUNT];
    }

    /// Cumulative lookup hits over all operations (survives [`OpCache::clear`]).
    pub(crate) fn hits(&self) -> u64 {
        self.hits.iter().sum()
    }

    /// Cumulative lookup misses over all operations (survives [`OpCache::clear`]).
    pub(crate) fn misses(&self) -> u64 {
        self.misses.iter().sum()
    }

    /// Per-operation `(name, hits, misses)` rows, one per [`Op`] kind.
    pub(crate) fn stats_by_op(&self) -> [(&'static str, u64, u64); Op::COUNT] {
        Op::all().map(|op| (op.name(), self.hits[op.index()], self.misses[op.index()]))
    }

    #[allow(dead_code)]
    pub(crate) fn hit_rate(&self) -> f64 {
        let (hits, misses) = (self.hits(), self.misses());
        if hits + misses == 0 {
            0.0
        } else {
            hits as f64 / (hits + misses) as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_entries() {
        let mut c = OpCache::new();
        assert_eq!(c.get(Op::And, 2, 3, 0), None);
        c.put(Op::And, 2, 3, 0, 7);
        assert_eq!(c.get(Op::And, 2, 3, 0), Some(7));
        assert_eq!(c.get(Op::Xor, 2, 3, 0), None);
        c.clear();
        assert_eq!(c.get(Op::And, 2, 3, 0), None);
    }

    #[test]
    fn capacity_bound_evicts_wholesale() {
        let mut c = OpCache::with_capacity_bits(0); // clamps to MIN_CACHE_BITS
        assert_eq!(c.capacity_bits(), MIN_CACHE_BITS);
        let cap = 1u32 << MIN_CACHE_BITS;
        for i in 0..cap {
            c.put(Op::And, i, i, 0, i);
        }
        assert_eq!(c.evictions(), 0);
        assert_eq!(c.get(Op::And, 0, 0, 0), Some(0));
        // The table is full: one more insert drops everything, then lands.
        c.put(Op::And, cap, cap, 0, cap);
        assert_eq!(c.evictions(), 1);
        assert_eq!(c.get(Op::And, 0, 0, 0), None);
        assert_eq!(c.get(Op::And, cap, cap, 0), Some(cap));
    }

    #[test]
    fn shrinking_capacity_evicts_oversized_table() {
        let mut c = OpCache::with_capacity_bits(12);
        for i in 0..2048u32 {
            c.put(Op::Xor, i, i, 0, i);
        }
        c.set_capacity_bits(10);
        assert_eq!(c.evictions(), 1);
        assert_eq!(c.get(Op::Xor, 1, 1, 0), None);
        // Growing back is free.
        c.set_capacity_bits(40); // clamps to MAX_CACHE_BITS
        assert_eq!(c.capacity_bits(), MAX_CACHE_BITS);
        assert_eq!(c.evictions(), 1);
    }

    #[test]
    fn per_op_stats_sum_to_aggregate() {
        let mut c = OpCache::new();
        c.put(Op::And, 2, 3, 0, 7);
        let _ = c.get(Op::And, 2, 3, 0); // and: 1 hit
        let _ = c.get(Op::And, 9, 9, 0); // and: 1 miss
        let _ = c.get(Op::Ite, 2, 3, 4); // ite: 1 miss
        assert_eq!(c.hits(), 1);
        assert_eq!(c.misses(), 2);
        let by_op = c.stats_by_op();
        let and = by_op.iter().find(|(n, _, _)| *n == "and").unwrap();
        assert_eq!((and.1, and.2), (1, 1));
        let ite = by_op.iter().find(|(n, _, _)| *n == "ite").unwrap();
        assert_eq!((ite.1, ite.2), (0, 1));
        assert_eq!(by_op.iter().map(|r| r.1).sum::<u64>(), c.hits());
        assert_eq!(by_op.iter().map(|r| r.2).sum::<u64>(), c.misses());
    }
}
