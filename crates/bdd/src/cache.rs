//! The computed table: memoisation for the recursive operator core.

use crate::hasher::FxBuildHasher;
use std::collections::HashMap;

/// Operation tags for computed-table keys.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub(crate) enum Op {
    Not,
    And,
    Or,
    Xor,
    Ite,
    Exists,
    Forall,
    /// Functional composition; the substituted variable is the third key slot.
    Compose,
    /// Generalised cofactor / restrict against a cube.
    Restrict,
    /// Relational product: existential quantification of a conjunction.
    AndExists,
}

/// Memo table shared by all recursive operations.
///
/// Entries hold *unprotected* node indices, so the cache must be cleared
/// whenever nodes may be reclaimed (garbage collection, reordering).
#[derive(Debug, Default)]
pub(crate) struct OpCache {
    map: HashMap<(Op, u32, u32, u32), u32, FxBuildHasher>,
    hits: u64,
    misses: u64,
}

impl OpCache {
    pub(crate) fn new() -> Self {
        OpCache::default()
    }

    #[inline]
    pub(crate) fn get(&mut self, op: Op, a: u32, b: u32, c: u32) -> Option<u32> {
        let r = self.map.get(&(op, a, b, c)).copied();
        if r.is_some() {
            self.hits += 1;
        } else {
            self.misses += 1;
        }
        r
    }

    #[inline]
    pub(crate) fn put(&mut self, op: Op, a: u32, b: u32, c: u32, result: u32) {
        self.map.insert((op, a, b, c), result);
    }

    pub(crate) fn clear(&mut self) {
        self.map.clear();
    }

    /// Cumulative lookup hits (survives [`OpCache::clear`]).
    pub(crate) fn hits(&self) -> u64 {
        self.hits
    }

    /// Cumulative lookup misses (survives [`OpCache::clear`]).
    pub(crate) fn misses(&self) -> u64 {
        self.misses
    }

    #[allow(dead_code)]
    pub(crate) fn hit_rate(&self) -> f64 {
        if self.hits + self.misses == 0 {
            0.0
        } else {
            self.hits as f64 / (self.hits + self.misses) as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_entries() {
        let mut c = OpCache::new();
        assert_eq!(c.get(Op::And, 2, 3, 0), None);
        c.put(Op::And, 2, 3, 0, 7);
        assert_eq!(c.get(Op::And, 2, 3, 0), Some(7));
        assert_eq!(c.get(Op::Or, 2, 3, 0), None);
        c.clear();
        assert_eq!(c.get(Op::And, 2, 3, 0), None);
    }
}
