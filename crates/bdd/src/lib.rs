//! # bbec-bdd — a from-scratch ROBDD package with complement edges
//!
//! Reduced Ordered Binary Decision Diagrams in the spirit of Bryant (1986)
//! and the CUDD package used by the reproduced paper (Scholl & Becker,
//! DAC 2001): hash-consed nodes in per-level unique tables, an ITE-based
//! operator core with a computed cache, existential/universal quantification,
//! functional composition, reference-counted garbage collection and **dynamic
//! variable reordering by Rudell sifting**.
//!
//! Handles are **tagged complement edges** (Brace/Rudell/Bryant, DAC 1990):
//! a [`Bdd`] packs a node index and a complement bit, so a function and its
//! negation share one node, [`BddManager::not`] is an O(1) bit flip with no
//! cache traffic, and every dual operator pair (`or`/`and`, `xnor`/`xor`,
//! `forall`/`exists`) shares a single recursion and one set of computed-table
//! entries. The canonical form keeps every stored then-edge uncomplemented;
//! [`BddManager::check_invariants`] enforces it.
//!
//! The package is deliberately single-threaded: a [`BddManager`] owns every
//! node, and functions are identified by copyable [`Bdd`] handles into the
//! manager. Handles stay valid across garbage collection and reordering as
//! long as they are *protected* (see below); swapping adjacent levels updates
//! nodes in place, so a protected handle keeps denoting the same Boolean
//! function under any variable order.
//!
//! ## Protection contract
//!
//! Operations never free nodes on their own. Nodes are only reclaimed by
//! [`BddManager::collect_garbage`] and (for newly dead nodes) during
//! [`BddManager::reorder`]/[`BddManager::sift_to_fixpoint`]. A handle you
//! want to keep across those calls must be protected with
//! [`BddManager::protect`] and later released with [`BddManager::release`].
//! Variable projection functions returned by [`BddManager::var`] and the two
//! constants are always protected.
//!
//! ## Budgets
//!
//! Install a [`Budget`] with [`BddManager::set_budget`] to cap live nodes,
//! apply steps, or wall-clock time for the budgeted `try_*` operations
//! (`try_ite`, `try_and`, `try_exists`, …), which return [`BudgetExceeded`]
//! as a value instead of panicking. After an abort the manager stays fully
//! usable: protected nodes survive, and the aborted operation's
//! intermediates are reclaimed by the next garbage collection. The classic
//! infallible names (`and`, `ite`, …) run with the budget ignored.
//!
//! ## Example
//!
//! ```rust
//! use bbec_bdd::BddManager;
//!
//! let mut m = BddManager::new();
//! let x = m.new_var();
//! let y = m.new_var();
//! let (fx, fy) = (m.var(x), m.var(y));
//!
//! // x XOR y, built two different ways, hash-conses to the same node.
//! let a = m.xor(fx, fy);
//! let nx = m.not(fx);
//! let ny = m.not(fy);
//! let t1 = m.and(fx, ny);
//! let t2 = m.and(nx, fy);
//! let b = m.or(t1, t2);
//! assert_eq!(a, b);
//!
//! // Two of the four assignments satisfy it.
//! assert_eq!(m.sat_count(a), 2.0);
//! ```

mod analysis;
mod any;
mod apply;
mod budget;
mod cache;
mod cube;
mod dot;
mod hasher;
pub mod io;
mod manager;
mod pool;
mod quant;
mod reorder;
mod shared;

pub use analysis::SatAssignment;
pub use any::AnyManager;
/// Re-exported from `bbec-trace`, where the telemetry types live since the
/// observability layer was split out; the `bbec-bdd` API is unchanged.
pub use bbec_trace::OpTelemetry;
pub use budget::{Budget, BudgetExceeded};
pub use cache::{clamp_cache_bits, DEFAULT_CACHE_BITS, MAX_CACHE_BITS, MIN_CACHE_BITS};
pub use cube::Cube;
pub use manager::{Bdd, BddManager, BddStats, BddVar, ReorderSettings};
pub use pool::{ManagerPool, PoolStats};
pub use shared::{SharedConfig, SharedHandle, SharedManager};

#[cfg(test)]
mod tests {
    #[test]
    fn crate_compiles() {}
}
