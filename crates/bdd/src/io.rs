//! Textual serialisation of shared BDD forests.
//!
//! The format is a line-oriented node list (children before parents), so
//! forests can be checkpointed, diffed in tests and shipped between
//! processes:
//!
//! ```text
//! bdd <vars> <nodes> <roots>
//! <id> <var> <lo-ref> <hi-ref>    # one line per internal node
//! roots <ref> <ref> …
//! ```
//!
//! Node ids are local to the file; `0` and `1` denote the constants. A
//! reference is a node id with an optional `!` prefix marking a
//! complemented edge (`!7` is the negation of node 7), mirroring the
//! in-memory tagged-edge representation. Files written before complement
//! edges existed contain no `!` and still load. Loading uses ITE to
//! rebuild nodes, so a forest can be read into a manager with a
//! *different* variable order (the semantics, not the shape, is what
//! round-trips).

use crate::manager::{Bdd, BddManager, BddVar, FALSE, TERMINAL_LEVEL, TRUE};
use std::collections::HashMap;
use std::error::Error;
use std::fmt;
use std::fmt::Write as _;

/// Error parsing a serialised forest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseForestError(String);

impl fmt::Display for ParseForestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid bdd forest: {}", self.0)
    }
}

impl Error for ParseForestError {}

impl BddManager {
    /// Serialises the shared graph of `roots`.
    pub fn write_forest(&self, roots: &[Bdd]) -> String {
        // Collect the shared nodes bottom-up (children first), walking node
        // indices so `f` and `¬f` serialise as one node.
        let mut order: Vec<u32> = Vec::new();
        let mut seen: HashMap<u32, ()> = HashMap::new();
        fn visit(m: &BddManager, idx: u32, seen: &mut HashMap<u32, ()>, order: &mut Vec<u32>) {
            if idx == 0 || seen.contains_key(&idx) {
                return;
            }
            seen.insert(idx, ());
            let n = &m.nodes[idx as usize];
            visit(m, n.lo >> 1, seen, order);
            visit(m, n.hi >> 1, seen, order);
            order.push(idx);
        }
        for r in roots {
            visit(self, r.node_index(), &mut seen, &mut order);
        }
        // Local ids: 0/1 reserved for the constants, internal nodes from 2.
        let mut local: HashMap<u32, usize> = HashMap::new();
        for (k, &idx) in order.iter().enumerate() {
            local.insert(idx, k + 2);
        }
        let edge_ref = |edge: u32| -> String {
            match edge {
                FALSE => "0".to_string(),
                TRUE => "1".to_string(),
                _ if edge & 1 == 1 => format!("!{}", local[&(edge >> 1)]),
                _ => format!("{}", local[&(edge >> 1)]),
            }
        };
        let mut out = String::new();
        let _ = writeln!(out, "bdd {} {} {}", self.var_count(), order.len(), roots.len());
        for &idx in &order {
            let n = &self.nodes[idx as usize];
            debug_assert_ne!(n.level, TERMINAL_LEVEL);
            let var = self.level_to_var[n.level as usize];
            let _ = writeln!(out, "{} {} {} {}", local[&idx], var, edge_ref(n.lo), edge_ref(n.hi));
        }
        out.push_str("roots");
        for r in roots {
            let _ = write!(out, " {}", edge_ref(r.0));
        }
        out.push('\n');
        out
    }

    /// Loads a forest previously written with [`BddManager::write_forest`].
    ///
    /// Missing variables are created; the current variable order may differ
    /// from the writer's (nodes are rebuilt with ITE). Returned roots are
    /// *not* protected.
    ///
    /// # Errors
    ///
    /// [`ParseForestError`] on malformed text or dangling references.
    pub fn read_forest(&mut self, text: &str) -> Result<Vec<Bdd>, ParseForestError> {
        let mut lines = text.lines();
        let header = lines.next().ok_or_else(|| ParseForestError("empty input".into()))?;
        let mut h = header.split_whitespace();
        if h.next() != Some("bdd") {
            return Err(ParseForestError("missing `bdd` header".into()));
        }
        let nums: Vec<usize> = h
            .map(|t| t.parse().map_err(|_| ParseForestError(format!("bad header `{header}`"))))
            .collect::<Result<_, _>>()?;
        let [vars, nodes, roots_n] = nums[..] else {
            return Err(ParseForestError(format!("bad header `{header}`")));
        };
        while self.var_count() < vars {
            self.new_var();
        }
        let mut local: Vec<Bdd> = vec![self.constant(false), self.constant(true)];
        // A reference is a local id, optionally `!`-prefixed for negation.
        let resolve = |local: &[Bdd], token: &str| -> Result<Bdd, ParseForestError> {
            let (neg, id) = match token.strip_prefix('!') {
                Some(rest) => (true, rest),
                None => (false, token),
            };
            id.parse::<usize>()
                .ok()
                .and_then(|i| local.get(i).copied())
                .map(|b| if neg { Bdd(b.0 ^ 1) } else { b })
                .ok_or_else(|| ParseForestError(format!("dangling reference `{token}`")))
        };
        for _ in 0..nodes {
            let line = lines.next().ok_or_else(|| ParseForestError("truncated".into()))?;
            let fields: Vec<&str> = line.split_whitespace().collect();
            let [id, var, lo, hi] = fields[..] else {
                return Err(ParseForestError(format!("bad line `{line}`")));
            };
            let id: usize =
                id.parse().map_err(|_| ParseForestError(format!("bad line `{line}`")))?;
            let var: usize =
                var.parse().map_err(|_| ParseForestError(format!("bad line `{line}`")))?;
            if id != local.len() || var >= self.var_count() {
                return Err(ParseForestError(format!("dangling reference in `{line}`")));
            }
            let lo = resolve(&local, lo)?;
            let hi = resolve(&local, hi)?;
            let v = self.var(BddVar(var as u32));
            let node = self.ite(v, hi, lo);
            local.push(node);
        }
        let roots_line =
            lines.next().ok_or_else(|| ParseForestError("missing roots line".into()))?;
        let mut r = roots_line.split_whitespace();
        if r.next() != Some("roots") {
            return Err(ParseForestError("missing `roots` keyword".into()));
        }
        let roots: Vec<Bdd> = r.map(|t| resolve(&local, t)).collect::<Result<_, _>>()?;
        if roots.len() != roots_n {
            return Err(ParseForestError(format!(
                "header promised {roots_n} roots, found {}",
                roots.len()
            )));
        }
        Ok(roots)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_forest() -> (BddManager, Vec<Bdd>) {
        let mut m = BddManager::new();
        let vars = m.new_vars(5);
        let lits: Vec<Bdd> = vars.iter().map(|&v| m.var(v)).collect();
        let a = m.and(lits[0], lits[1]);
        let x = m.xor(lits[2], lits[3]);
        let f = m.or(a, x);
        let g = m.ite(lits[4], f, a);
        (m, vec![f, g, a])
    }

    #[test]
    fn round_trip_same_manager_order() {
        let (m, roots) = sample_forest();
        let text = m.write_forest(&roots);
        let mut m2 = BddManager::new();
        let loaded = m2.read_forest(&text).unwrap();
        assert_eq!(loaded.len(), roots.len());
        for bits in 0..32u32 {
            let assign: Vec<bool> = (0..5).map(|i| bits >> i & 1 == 1).collect();
            for (a, b) in roots.iter().zip(&loaded) {
                assert_eq!(m.eval(*a, &assign), m2.eval(*b, &assign), "at {bits:05b}");
            }
        }
    }

    #[test]
    fn round_trip_into_reordered_manager() {
        let (m, roots) = sample_forest();
        let text = m.write_forest(&roots);
        let mut m2 = BddManager::new();
        let vars = m2.new_vars(5);
        m2.set_var_order(&[vars[4], vars[2], vars[0], vars[3], vars[1]]);
        let loaded = m2.read_forest(&text).unwrap();
        for bits in 0..32u32 {
            let assign: Vec<bool> = (0..5).map(|i| bits >> i & 1 == 1).collect();
            for (a, b) in roots.iter().zip(&loaded) {
                assert_eq!(m.eval(*a, &assign), m2.eval(*b, &assign), "at {bits:05b}");
            }
        }
    }

    #[test]
    fn complemented_roots_round_trip() {
        let mut m = BddManager::new();
        let vars = m.new_vars(3);
        let lits: Vec<Bdd> = vars.iter().map(|&v| m.var(v)).collect();
        let f = m.and(lits[0], lits[1]);
        let nf = m.not(f);
        let text = m.write_forest(&[f, nf]);
        // One shared node list, two complementary roots.
        let mut m2 = BddManager::new();
        let loaded = m2.read_forest(&text).unwrap();
        assert_eq!(loaded[0], m2.not(loaded[1]));
        for bits in 0..8u32 {
            let assign: Vec<bool> = (0..3).map(|i| bits >> i & 1 == 1).collect();
            assert_eq!(m.eval(f, &assign), m2.eval(loaded[0], &assign));
            assert_eq!(m.eval(nf, &assign), m2.eval(loaded[1], &assign));
        }
    }

    #[test]
    fn constants_and_sharing_survive() {
        let mut m = BddManager::new();
        let v = m.new_vars(2);
        let a = m.var(v[0]);
        let t = m.constant(true);
        let text = m.write_forest(&[t, a, a]);
        let mut m2 = BddManager::new();
        let loaded = m2.read_forest(&text).unwrap();
        assert_eq!(loaded[0], m2.constant(true));
        assert_eq!(loaded[1], loaded[2], "shared roots stay shared");
    }

    #[test]
    fn reads_legacy_uncomplemented_files() {
        // A file from before complement edges: x0 as (id 2, lo=0, hi=1).
        let mut m = BddManager::new();
        let loaded = m.read_forest("bdd 1 1 1\n2 0 0 1\nroots 2\n").unwrap();
        let v = m.var_at_level(0);
        assert_eq!(loaded[0], m.var(v));
    }

    #[test]
    fn rejects_malformed_input() {
        let mut m = BddManager::new();
        assert!(m.read_forest("").is_err());
        assert!(m.read_forest("nope 1 2 3\n").is_err());
        assert!(m.read_forest("bdd 1 1 1\n2 0 5 1\nroots 2\n").is_err()); // dangling lo
        assert!(m.read_forest("bdd 1 0 1\nroots 7\n").is_err()); // bad root
        assert!(m.read_forest("bdd 1 0 1\nroots !7\n").is_err()); // bad negated root
        assert!(m.read_forest("bdd x y z\n").is_err());
    }
}
