//! Dynamic variable reordering by Rudell sifting (ICCAD 1993), as CUDD's
//! `CUDD_REORDER_SIFT` used in the reproduced paper.
//!
//! The primitive is an in-place swap of two adjacent levels: nodes at the
//! upper level are rewritten so every live node keeps denoting the same
//! Boolean function afterwards. Protected handles therefore survive
//! reordering unchanged.

#[cfg(test)]
use crate::manager::Bdd;
use crate::manager::{BddManager, BddVar, Node, NIL};

impl BddManager {
    /// Swaps the variables at `level` and `level + 1` in place.
    ///
    /// All live nodes keep their identity and meaning; dead nodes at the two
    /// levels (and anything they exclusively referenced) are reclaimed.
    ///
    /// # Panics
    ///
    /// Panics if `level + 1` is not a valid level.
    pub fn swap_adjacent(&mut self, level: u32) {
        let lev_u = level;
        let lev_v = level + 1;
        assert!((lev_v as usize) < self.tables.len(), "level out of range");
        // Stale cache entries would reference nodes this swap may free.
        self.cache.clear();

        let u_nodes = self.drain_level(lev_u);
        let v_nodes = self.drain_level(lev_v);

        // Pass 1: u-nodes independent of v keep their children and simply
        // move down one level. They must be inserted before pass 2 so the
        // rebuild below finds them instead of creating duplicates.
        let mut dependent = Vec::new();
        for idx in u_nodes {
            let (lo, hi) = {
                let n = &self.nodes[idx as usize];
                (n.lo, n.hi)
            };
            if self.level(lo) != lev_v && self.level(hi) != lev_v {
                self.nodes[idx as usize].level = lev_v;
                self.table_insert(lev_v, idx);
            } else {
                dependent.push(idx);
            }
        }

        // Pass 2: rebuild the dependent u-nodes in place. A node
        // `ite(u, F0, F1)` becomes `ite(v, G0, G1)` with
        // `G0 = ite(u, F00, F10)` and `G1 = ite(u, F01, F11)`.
        for idx in dependent {
            let (f0, f1) = {
                let n = &self.nodes[idx as usize];
                (n.lo, n.hi)
            };
            // Expanding a child distributes its complement tag onto the
            // grandchildren. `f1` is a stored then-edge, hence regular.
            debug_assert_eq!(f1 & 1, 0, "stored then-edge must be regular");
            let (f00, f01) = if self.level(f0) == lev_v {
                let n = &self.nodes[(f0 >> 1) as usize];
                let tag = f0 & 1;
                (n.lo ^ tag, n.hi ^ tag)
            } else {
                (f0, f0)
            };
            let (f10, f11) = if self.level(f1) == lev_v {
                let n = &self.nodes[(f1 >> 1) as usize];
                (n.lo, n.hi)
            } else {
                (f1, f1)
            };
            let g0 = self.mk(lev_v, f00, f10);
            let g1 = self.mk(lev_v, f01, f11);
            debug_assert_ne!(g0, g1, "rebuilt node would be redundant");
            // Both rebuilt children take their then-slot from `f1`'s regular
            // expansion, so neither acquires a complement tag and the
            // rewritten node keeps the canonical (regular then-edge) form.
            debug_assert_eq!(g1.0 & 1, 0, "rebuilt then-edge must stay regular");
            self.inc_node(g0.0);
            self.inc_node(g1.0);
            self.dec_node(f0);
            self.dec_node(f1);
            let n = &mut self.nodes[idx as usize];
            n.lo = g0.0;
            n.hi = g1.0;
            // Level stays `lev_u`: the node now branches on v, which is
            // about to move to the upper level.
            self.table_insert(lev_u, idx);
        }

        // Pass 3: surviving v-nodes move up; dead ones are reclaimed.
        for idx in v_nodes {
            if self.nodes[idx as usize].refs > 0 {
                self.nodes[idx as usize].level = lev_u;
                self.table_insert(lev_u, idx);
            } else {
                self.free_detached(idx);
            }
        }

        // Finally exchange the variable labels of the two levels.
        let u_var = self.level_to_var[lev_u as usize];
        let v_var = self.level_to_var[lev_v as usize];
        self.level_to_var[lev_u as usize] = v_var;
        self.level_to_var[lev_v as usize] = u_var;
        self.var_to_level[u_var as usize] = lev_v;
        self.var_to_level[v_var as usize] = lev_u;
    }

    /// Unlinks every node of `level`'s unique table and returns their ids.
    fn drain_level(&mut self, level: u32) -> Vec<u32> {
        let bucket_count = self.tables[level as usize].buckets.len();
        let mut out = Vec::with_capacity(self.tables[level as usize].count);
        for b in 0..bucket_count {
            let mut cursor = self.tables[level as usize].buckets[b];
            self.tables[level as usize].buckets[b] = NIL;
            while cursor != NIL {
                let next = self.nodes[cursor as usize].next;
                self.nodes[cursor as usize].next = NIL;
                out.push(cursor);
                cursor = next;
            }
        }
        self.tables[level as usize].count = 0;
        out
    }

    /// Frees a dead node that is already detached from its unique table,
    /// cascading to children that die with it.
    fn free_detached(&mut self, idx: u32) {
        debug_assert_eq!(self.nodes[idx as usize].refs, 0);
        let (lo, hi) = {
            let n = &self.nodes[idx as usize];
            (n.lo, n.hi)
        };
        self.nodes[idx as usize] = Node { level: 0, lo: NIL, hi: NIL, refs: 0, next: NIL };
        self.free.push(idx);
        self.dead -= 1;
        self.adjust_live(-1);
        self.cascade_release(lo);
        self.cascade_release(hi);
    }

    fn cascade_release(&mut self, edge: u32) {
        self.dec_node(edge);
        let idx = edge >> 1;
        if idx != 0 && self.nodes[idx as usize].refs == 0 {
            let level = self.nodes[idx as usize].level;
            self.table_remove(level, idx);
            self.free_detached(idx);
        }
    }

    /// Moves `var` through the order to its locally best position.
    ///
    /// Returns the live node count after the sift.
    fn sift_var(&mut self, var: BddVar, max_growth: f64) -> usize {
        let levels = self.tables.len() as u32;
        if levels < 2 {
            return self.live_count();
        }
        let start = self.level_of(var);
        let start_size = self.live_count();
        let limit = (start_size as f64 * max_growth) as usize + 2;
        let mut best_size = start_size;
        let mut best_level = start;

        // Phase 1: sift toward the nearer end first to cut swap volume.
        let down_first = (levels - 1 - start) <= start;
        let order: [i8; 2] = if down_first { [1, -1] } else { [-1, 1] };
        let mut pos = start;
        for (phase, &dir) in order.iter().enumerate() {
            if phase == 1 {
                // Return to the best point seen so far before exploring the
                // other direction.
                while pos < best_level {
                    self.swap_adjacent(pos);
                    pos += 1;
                }
                while pos > best_level {
                    self.swap_adjacent(pos - 1);
                    pos -= 1;
                }
            }
            loop {
                if dir > 0 {
                    if pos + 1 >= levels {
                        break;
                    }
                    self.swap_adjacent(pos);
                    pos += 1;
                } else {
                    if pos == 0 {
                        break;
                    }
                    self.swap_adjacent(pos - 1);
                    pos -= 1;
                }
                let size = self.live_count();
                if size < best_size {
                    best_size = size;
                    best_level = pos;
                }
                if size > limit {
                    break;
                }
            }
        }
        // Phase 2: settle at the best position.
        while pos < best_level {
            self.swap_adjacent(pos);
            pos += 1;
        }
        while pos > best_level {
            self.swap_adjacent(pos - 1);
            pos -= 1;
        }
        self.live_count()
    }

    /// One full sifting pass: every variable is sifted once, most populous
    /// level first (Rudell's ordering).
    ///
    /// Dead nodes are collected first; protected handles survive unchanged.
    /// Returns the live node count after the pass.
    pub fn reorder(&mut self) -> usize {
        let span = if self.tracer.enabled() {
            let s = self.tracer.span("bdd.reorder");
            s.set_attr("kind", "sift");
            Some(s)
        } else {
            None
        };
        self.collect_garbage();
        let live_before = self.live_count();
        if let Some(s) = &span {
            s.set_attr("live_before", live_before);
        }
        self.cache.clear();
        let max_growth = self.reorder_settings.max_growth;
        let mut vars: Vec<(usize, u32)> =
            (0..self.tables.len()).map(|l| (self.tables[l].count, self.level_to_var[l])).collect();
        vars.sort_by_key(|v| std::cmp::Reverse(v.0));
        for (_, var) in vars {
            self.sift_var(BddVar(var), max_growth);
        }
        self.note_reordering();
        let live = self.live_count();
        if let Some(s) = span {
            s.set_attr("live_after", live);
            self.tracer.record("bdd.reorder.live_after", live as u64);
        }
        self.flight_note("reorder", live_before as u64, live as u64);
        live
    }

    /// One pass of **window-3 permutation** reordering: for every window of
    /// three adjacent levels, all six permutations are tried (via adjacent
    /// swaps) and the best is kept. Cheaper but weaker than sifting; kept
    /// as an ablation point and a fast clean-up pass.
    ///
    /// Returns the live node count after the pass.
    pub fn reorder_window3(&mut self) -> usize {
        let span = if self.tracer.enabled() {
            let s = self.tracer.span("bdd.reorder");
            s.set_attr("kind", "window3");
            Some(s)
        } else {
            None
        };
        self.collect_garbage();
        let live_before = self.live_count();
        if let Some(s) = &span {
            s.set_attr("live_before", live_before);
        }
        self.cache.clear();
        let levels = self.tables.len();
        if levels < 3 {
            return live_before;
        }
        for top in 0..levels - 2 {
            let i = top as u32;
            // Enumerate the 6 permutations of levels (i, i+1, i+2) by a
            // fixed swap schedule; track the best prefix.
            // Swap sequence: s0 s1 s0 s1 s0 cycles through all 6 states.
            let mut best_size = self.live_count();
            let mut best_state = 0usize;
            let schedule = [i, i + 1, i, i + 1, i];
            for (state, &level) in schedule.iter().enumerate() {
                self.swap_adjacent(level);
                let size = self.live_count();
                if size < best_size {
                    best_size = size;
                    best_state = state + 1;
                }
            }
            // Rewind from state 5 back to the best state.
            for state in (best_state..5).rev() {
                self.swap_adjacent(schedule[state]);
            }
        }
        self.note_reordering();
        let live = self.live_count();
        if let Some(s) = span {
            s.set_attr("live_after", live);
        }
        self.flight_note("reorder", live_before as u64, live as u64);
        live
    }

    /// Repeats [`BddManager::reorder`] until a pass stops shrinking the
    /// graph (or `max_passes` is hit).
    pub fn sift_to_fixpoint(&mut self, max_passes: usize) -> usize {
        let mut size = self.live_count();
        for _ in 0..max_passes {
            let new_size = self.reorder();
            if new_size >= size {
                return new_size;
            }
            size = new_size;
        }
        size
    }

    /// Triggers [`BddManager::reorder`] if automatic reordering is enabled
    /// and the live node count exceeds the configured threshold.
    ///
    /// Returns `true` if a reordering pass ran. Call this between
    /// operations only — never while unprotected intermediate results are
    /// held.
    pub fn maybe_reorder(&mut self) -> bool {
        if !self.reorder_settings.enabled || self.live_count() <= self.reorder_settings.threshold {
            return false;
        }
        self.reorder();
        let next = (self.live_count() as f64 * self.reorder_settings.growth) as usize;
        self.reorder_settings.threshold = self.reorder_settings.threshold.max(next);
        true
    }

    /// Rearranges the levels to match `order` exactly (top to bottom).
    ///
    /// # Panics
    ///
    /// Panics if `order` is not a permutation of all declared variables.
    pub fn set_var_order(&mut self, order: &[BddVar]) {
        assert_eq!(order.len(), self.var_count(), "order must mention every variable");
        let mut seen = vec![false; self.var_count()];
        for v in order {
            assert!(!std::mem::replace(&mut seen[v.0 as usize], true), "duplicate variable");
        }
        self.collect_garbage();
        for (target, &var) in order.iter().enumerate() {
            // Bubble `var` up to `target`; everything above `target` is done.
            let mut pos = self.level_of(var);
            debug_assert!(pos >= target as u32);
            while pos > target as u32 {
                self.swap_adjacent(pos - 1);
                pos -= 1;
            }
        }
    }

    /// The current order as a top-to-bottom list of variables.
    pub fn var_order(&self) -> Vec<BddVar> {
        self.level_to_var.iter().map(|&v| BddVar(v)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds f = (x0 ∧ x1) ∨ (x2 ∧ x3) ∨ (x4 ∧ x5) and returns (manager, f).
    fn two_level_example() -> (BddManager, Bdd, Vec<BddVar>) {
        let mut m = BddManager::new();
        let vars = m.new_vars(6);
        let mut f = m.constant(false);
        for pair in vars.chunks(2) {
            let a = m.var(pair[0]);
            let b = m.var(pair[1]);
            let t = m.and(a, b);
            f = m.or(f, t);
        }
        m.protect(f);
        (m, f, vars)
    }

    fn truth_table(m: &BddManager, f: Bdd, n: usize) -> Vec<bool> {
        (0..1u32 << n)
            .map(|bits| {
                let assign: Vec<bool> = (0..n).map(|i| bits >> i & 1 == 1).collect();
                m.eval(f, &assign)
            })
            .collect()
    }

    #[test]
    fn swap_preserves_semantics() {
        let (mut m, f, _) = two_level_example();
        let before = truth_table(&m, f, 6);
        for level in 0..5 {
            m.swap_adjacent(level);
            m.check_invariants();
            assert_eq!(truth_table(&m, f, 6), before, "swap at level {level} broke f");
        }
    }

    #[test]
    fn swap_twice_is_identity_order() {
        let (mut m, f, vars) = two_level_example();
        let order_before = m.var_order();
        let size_before = m.node_count(f);
        m.swap_adjacent(2);
        m.swap_adjacent(2);
        assert_eq!(m.var_order(), order_before);
        assert_eq!(m.node_count(f), size_before);
        let _ = vars;
    }

    #[test]
    fn interleaved_order_shrinks_disjoint_conjunctions() {
        // With order x0 x2 x4 x1 x3 x5 the function needs exponentially many
        // nodes; sifting must recover (close to) the interleaved order.
        let mut m = BddManager::new();
        let vars = m.new_vars(6);
        let bad = [vars[0], vars[2], vars[4], vars[1], vars[3], vars[5]];
        m.set_var_order(&bad);
        let mut f = m.constant(false);
        for pair in [(0, 1), (2, 3), (4, 5)] {
            let a = m.var(vars[pair.0]);
            let b = m.var(vars[pair.1]);
            let t = m.and(a, b);
            f = m.or(f, t);
        }
        m.protect(f);
        let before = m.node_count(f);
        let tt = truth_table(&m, f, 6);
        m.reorder();
        m.check_invariants();
        let after = m.node_count(f);
        assert!(after < before, "sifting failed to shrink: {before} -> {after}");
        assert_eq!(truth_table(&m, f, 6), tt);
    }

    #[test]
    fn set_var_order_applies_permutation() {
        let (mut m, f, vars) = two_level_example();
        let tt = truth_table(&m, f, 6);
        let target = vec![vars[5], vars[3], vars[1], vars[0], vars[2], vars[4]];
        m.set_var_order(&target);
        assert_eq!(m.var_order(), target);
        m.check_invariants();
        assert_eq!(truth_table(&m, f, 6), tt);
    }

    #[test]
    fn window3_preserves_semantics_and_shrinks() {
        let mut m = BddManager::new();
        let vars = m.new_vars(6);
        let bad = [vars[0], vars[2], vars[4], vars[1], vars[3], vars[5]];
        m.set_var_order(&bad);
        let mut f = m.constant(false);
        for pair in [(0, 1), (2, 3), (4, 5)] {
            let a = m.var(vars[pair.0]);
            let b = m.var(vars[pair.1]);
            let t = m.and(a, b);
            f = m.or(f, t);
        }
        m.protect(f);
        let tt = truth_table(&m, f, 6);
        let before = m.node_count(f);
        // A few passes: window-3 is local, so iterate.
        for _ in 0..4 {
            m.reorder_window3();
        }
        m.check_invariants();
        assert_eq!(truth_table(&m, f, 6), tt);
        assert!(m.node_count(f) <= before);
    }

    #[test]
    fn window3_on_tiny_managers_is_noop() {
        let mut m = BddManager::new();
        let v = m.new_vars(2);
        let a = m.var(v[0]);
        let b = m.var(v[1]);
        let f = m.and(a, b);
        m.protect(f);
        let size = m.reorder_window3();
        assert_eq!(size, m.stats().live_nodes);
    }

    #[test]
    fn maybe_reorder_respects_threshold() {
        let mut m = BddManager::with_reordering(crate::ReorderSettings {
            threshold: 1_000_000,
            ..Default::default()
        });
        let vars = m.new_vars(4);
        let a = m.var(vars[0]);
        let b = m.var(vars[1]);
        let f = m.and(a, b);
        m.protect(f);
        assert!(!m.maybe_reorder(), "below threshold must not reorder");
    }

    #[test]
    fn reorder_reclaims_dead_nodes() {
        let (mut m, f, _) = two_level_example();
        // Create garbage.
        for _ in 0..4 {
            let g = m.not(f);
            let _ = m.not(g);
        }
        let tt = truth_table(&m, f, 6);
        m.reorder();
        m.check_invariants();
        assert_eq!(truth_table(&m, f, 6), tt);
        assert_eq!(m.dead_nodes(), 0);
    }

    #[test]
    fn projections_survive_reordering() {
        let (mut m, _, vars) = two_level_example();
        m.reorder();
        for (i, &v) in vars.iter().enumerate() {
            let lit = m.var(v);
            let mut assign = vec![false; 6];
            assert!(!m.eval(lit, &assign));
            assign[i] = true;
            assert!(m.eval(lit, &assign));
        }
    }
}
