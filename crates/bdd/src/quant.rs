//! Existential and universal quantification.
//!
//! With complement edges the two quantifiers are duals through a pair of
//! O(1) tag flips: `∀ cube. f = ¬∃ cube. ¬f`, so only the existential
//! recursion exists and both directions share one set of `exists` cache
//! entries. Like the operator core in `apply.rs`, every quantifier comes
//! as a budgeted `try_*` method plus a thin infallible wrapper that runs
//! with the budget removed.

use crate::budget::BudgetExceeded;
use crate::cache::Op;
use crate::cube::Cube;
use crate::manager::{Bdd, BddManager, BddVar, FALSE, TERMINAL_LEVEL, TRUE};

impl BddManager {
    /// Existential quantification `∃ cube. f`.
    pub fn exists(&mut self, f: Bdd, cube: Cube) -> Bdd {
        self.run_unbudgeted(|m| m.try_exists(f, cube))
    }

    /// Budgeted [`BddManager::exists`].
    pub fn try_exists(&mut self, f: Bdd, cube: Cube) -> Result<Bdd, BudgetExceeded> {
        self.exists_rec(f, cube.bdd)
    }

    /// Universal quantification `∀ cube. f` — the dual `¬∃ cube. ¬f`,
    /// sharing the existential recursion and its cache.
    pub fn forall(&mut self, f: Bdd, cube: Cube) -> Bdd {
        self.run_unbudgeted(|m| m.try_forall(f, cube))
    }

    /// Budgeted [`BddManager::forall`].
    pub fn try_forall(&mut self, f: Bdd, cube: Cube) -> Result<Bdd, BudgetExceeded> {
        let r = self.exists_rec(Bdd(f.0 ^ 1), cube.bdd)?;
        Ok(Bdd(r.0 ^ 1))
    }

    /// Convenience: `∃ vars. f` without building a [`Cube`] first.
    pub fn exists_vars(&mut self, f: Bdd, vars: &[BddVar]) -> Bdd {
        self.run_unbudgeted(|m| m.try_exists_vars(f, vars))
    }

    /// Budgeted [`BddManager::exists_vars`].
    pub fn try_exists_vars(&mut self, f: Bdd, vars: &[BddVar]) -> Result<Bdd, BudgetExceeded> {
        let cube = Cube::try_from_vars(self, vars)?;
        self.try_exists(f, cube)
    }

    /// Convenience: `∀ vars. f` without building a [`Cube`] first.
    pub fn forall_vars(&mut self, f: Bdd, vars: &[BddVar]) -> Bdd {
        self.run_unbudgeted(|m| m.try_forall_vars(f, vars))
    }

    /// Budgeted [`BddManager::forall_vars`].
    pub fn try_forall_vars(&mut self, f: Bdd, vars: &[BddVar]) -> Result<Bdd, BudgetExceeded> {
        let cube = Cube::try_from_vars(self, vars)?;
        self.try_forall(f, cube)
    }

    /// The relational product `∃ cube. f ∧ g`, computed without
    /// materialising the conjunction — the workhorse of image computation
    /// and of the input-exact check's `∀X (¬H ∨ cond)` step (via duality).
    pub fn and_exists(&mut self, f: Bdd, g: Bdd, cube: Cube) -> Bdd {
        self.run_unbudgeted(|m| m.try_and_exists(f, g, cube))
    }

    /// Budgeted [`BddManager::and_exists`].
    pub fn try_and_exists(&mut self, f: Bdd, g: Bdd, cube: Cube) -> Result<Bdd, BudgetExceeded> {
        self.and_exists_rec(f, g, cube.bdd)
    }

    /// Dual form `∀ cube. f ∨ g = ¬∃ cube. ¬f ∧ ¬g` — three tag flips
    /// around the relational product.
    pub fn or_forall(&mut self, f: Bdd, g: Bdd, cube: Cube) -> Bdd {
        self.run_unbudgeted(|m| m.try_or_forall(f, g, cube))
    }

    /// Budgeted [`BddManager::or_forall`].
    pub fn try_or_forall(&mut self, f: Bdd, g: Bdd, cube: Cube) -> Result<Bdd, BudgetExceeded> {
        let e = self.and_exists_rec(Bdd(f.0 ^ 1), Bdd(g.0 ^ 1), cube.bdd)?;
        Ok(Bdd(e.0 ^ 1))
    }

    fn and_exists_rec(&mut self, f: Bdd, g: Bdd, cube: Bdd) -> Result<Bdd, BudgetExceeded> {
        if f.0 == FALSE || g.0 == FALSE || f.0 == (g.0 ^ 1) {
            return Ok(self.constant(false));
        }
        if cube.0 == TRUE {
            return self.try_and(f, g);
        }
        if f.0 == TRUE {
            return self.exists_rec(g, cube);
        }
        if g.0 == TRUE {
            return self.exists_rec(f, cube);
        }
        // Order the operands for the commutative cache key.
        let (f, g) = if f.0 <= g.0 { (f, g) } else { (g, f) };
        let top = self.level(f.0).min(self.level(g.0));
        // Skip quantified variables above both operands. Cubes are positive
        // conjunctions, so their chain edges are always regular.
        let mut c = cube.0;
        while self.level(c) < top {
            c = self.nodes[(c >> 1) as usize].hi;
        }
        if self.level(c) == TERMINAL_LEVEL {
            return self.try_and(f, g);
        }
        let cube = Bdd(c);
        if let Some(r) = self.cache.get(Op::AndExists, f.0, g.0, cube.0) {
            return Ok(Bdd(r));
        }
        self.charge_step()?;
        let (f0, f1) = self.cofactors_at(f, top);
        let (g0, g1) = self.cofactors_at(g, top);
        let r = if self.level(cube.0) == top {
            let rest = Bdd(self.nodes[cube.node_index() as usize].hi);
            let a = self.and_exists_rec(f0, g0, rest)?;
            if a.0 == TRUE {
                a
            } else {
                let b = self.and_exists_rec(f1, g1, rest)?;
                self.try_or(a, b)?
            }
        } else {
            let a = self.and_exists_rec(f0, g0, cube)?;
            let b = self.and_exists_rec(f1, g1, cube)?;
            self.try_mk(top, a.0, b.0)?
        };
        self.cache.put(Op::AndExists, f.0, g.0, cube.0, r.0);
        Ok(r)
    }

    fn exists_rec(&mut self, f: Bdd, cube: Bdd) -> Result<Bdd, BudgetExceeded> {
        if f.is_const() || cube.0 == TRUE {
            return Ok(f);
        }
        // Skip quantified variables above the top variable of f.
        let flevel = self.level(f.0);
        let mut c = cube.0;
        while self.level(c) < flevel {
            c = self.nodes[(c >> 1) as usize].hi;
        }
        if self.level(c) == TERMINAL_LEVEL {
            return Ok(f);
        }
        let cube = Bdd(c);
        if let Some(r) = self.cache.get(Op::Exists, f.0, cube.0, 0) {
            return Ok(Bdd(r));
        }
        self.charge_step()?;
        let (lo, hi) = self.cofactors_at(f, flevel);
        let r = if self.level(cube.0) == flevel {
            let rest = Bdd(self.nodes[cube.node_index() as usize].hi);
            let a = self.exists_rec(lo, rest)?;
            if a.0 == TRUE {
                // Short-circuit: ∨ with true.
                a
            } else {
                let b = self.exists_rec(hi, rest)?;
                self.try_or(a, b)?
            }
        } else {
            let a = self.exists_rec(lo, cube)?;
            let b = self.exists_rec(hi, cube)?;
            self.try_mk(flevel, a.0, b.0)?
        };
        self.cache.put(Op::Exists, f.0, cube.0, 0, r.0);
        Ok(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exists_removes_variable() {
        let mut m = BddManager::new();
        let vars = m.new_vars(3);
        let (a, b) = (m.var(vars[0]), m.var(vars[1]));
        let f = m.and(a, b);
        // ∃b. a∧b = a
        let r = m.exists_vars(f, &[vars[1]]);
        assert_eq!(r, a);
        // ∃a∃b. a∧b = true
        let r = m.exists_vars(f, &[vars[0], vars[1]]);
        assert_eq!(r, m.constant(true));
    }

    #[test]
    fn forall_demands_both_branches() {
        let mut m = BddManager::new();
        let vars = m.new_vars(2);
        let (a, b) = (m.var(vars[0]), m.var(vars[1]));
        let f = m.or(a, b);
        // ∀b. a∨b = a
        let r = m.forall_vars(f, &[vars[1]]);
        assert_eq!(r, a);
        // ∀a. a∧b = false
        let g = m.and(a, b);
        let r = m.forall_vars(g, &[vars[0]]);
        assert_eq!(r, m.constant(false));
    }

    #[test]
    fn quantifying_absent_variable_is_identity() {
        let mut m = BddManager::new();
        let vars = m.new_vars(3);
        let (a, b) = (m.var(vars[0]), m.var(vars[1]));
        let f = m.xor(a, b);
        assert_eq!(m.exists_vars(f, &[vars[2]]), f);
        assert_eq!(m.forall_vars(f, &[vars[2]]), f);
    }

    #[test]
    fn duality_exists_forall() {
        let mut m = BddManager::new();
        let vars = m.new_vars(4);
        let lits: Vec<Bdd> = vars.iter().map(|&v| m.var(v)).collect();
        // f = (x0 ∧ x1) ∨ (x2 ⊕ x3)
        let p = m.and(lits[0], lits[1]);
        let q = m.xor(lits[2], lits[3]);
        let f = m.or(p, q);
        let qs = [vars[1], vars[2]];
        let lhs = m.forall_vars(f, &qs);
        let nf = m.not(f);
        let e = m.exists_vars(nf, &qs);
        let rhs = m.not(e);
        assert_eq!(lhs, rhs);
    }

    #[test]
    fn and_exists_matches_two_step_computation() {
        let mut m = BddManager::new();
        let vars = m.new_vars(6);
        let lits: Vec<Bdd> = vars.iter().map(|&v| m.var(v)).collect();
        // f = (x0 ∧ x2) ∨ x4, g = x2 ⊕ x5, quantify {x2, x4}.
        let p = m.and(lits[0], lits[2]);
        let f = m.or(p, lits[4]);
        let g = m.xor(lits[2], lits[5]);
        let cube = Cube::from_vars(&mut m, &[vars[2], vars[4]]);
        let direct = m.and_exists(f, g, cube);
        let conj = m.and(f, g);
        let two_step = m.exists(conj, cube);
        assert_eq!(direct, two_step);
        // Dual check.
        let dual = m.or_forall(f, g, cube);
        let disj = m.or(f, g);
        let expect = m.forall(disj, cube);
        assert_eq!(dual, expect);
    }

    #[test]
    fn and_exists_randomised_against_reference() {
        use crate::BddManager;
        let mut m = BddManager::new();
        let vars = m.new_vars(5);
        let lits: Vec<Bdd> = vars.iter().map(|&v| m.var(v)).collect();
        // A small pile of structured operands.
        let mut pool = lits.clone();
        for i in 0..lits.len() - 1 {
            let a = m.and(lits[i], lits[i + 1]);
            let o = m.or(lits[i], lits[(i + 2) % 5]);
            let x = m.xor(a, o);
            pool.push(x);
        }
        for (i, &f) in pool.iter().enumerate() {
            for (j, &g) in pool.iter().enumerate() {
                let cube = Cube::from_vars(&mut m, &[vars[i % 5], vars[j % 5], vars[2]]);
                let direct = m.and_exists(f, g, cube);
                let conj = m.and(f, g);
                let expect = m.exists(conj, cube);
                assert_eq!(direct, expect, "operands {i},{j}");
            }
        }
    }

    #[test]
    fn quantify_over_empty_cube_is_identity() {
        let mut m = BddManager::new();
        let vars = m.new_vars(2);
        let (a, b) = (m.var(vars[0]), m.var(vars[1]));
        let f = m.and(a, b);
        assert_eq!(m.exists_vars(f, &[]), f);
        assert_eq!(m.forall_vars(f, &[]), f);
    }

    #[test]
    fn forall_shares_the_exists_cache() {
        let mut m = BddManager::new();
        let vars = m.new_vars(4);
        let lits: Vec<Bdd> = vars.iter().map(|&v| m.var(v)).collect();
        let p = m.and(lits[0], lits[1]);
        let f = m.or(p, lits[3]);
        let nf = m.not(f);
        let e = m.exists_vars(nf, &[vars[1]]);
        let before = m.telemetry();
        // ∀ of f over the same cube walks exactly the ∃ recursion on ¬f,
        // which is now fully cached: no new apply steps.
        let a = m.forall_vars(f, &[vars[1]]);
        let after = m.telemetry();
        assert_eq!(a, m.not(e));
        assert_eq!(after.apply_steps, before.apply_steps);
    }
}
