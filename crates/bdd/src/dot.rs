//! Graphviz (DOT) export for debugging and documentation.

use crate::hasher::FxBuildHasher;
use crate::manager::{Bdd, BddManager, TERMINAL_LEVEL};
use std::collections::HashSet;
use std::fmt::Write as _;

impl BddManager {
    /// Renders the shared graph of `roots` as a Graphviz `digraph`.
    ///
    /// Solid edges are `then` branches and dotted edges `else` branches;
    /// **dashed** edges carry a complement tag (negated else branches and
    /// negated root pointers). There is a single `1` terminal — `0` is the
    /// dashed edge into it. `labels` names the roots; missing labels fall
    /// back to `f<i>`.
    pub fn to_dot(&self, roots: &[Bdd], labels: &[&str]) -> String {
        let mut out = String::from("digraph bdd {\n  rankdir=TB;\n");
        out.push_str("  node0 [label=\"1\", shape=box];\n");
        // Edge attributes: else branches dotted, complement tags dashed.
        let style = |edge: u32, is_else: bool| -> &'static str {
            match (edge & 1 == 1, is_else) {
                (true, _) => " [style=dashed]",
                (false, true) => " [style=dotted]",
                (false, false) => "",
            }
        };
        let mut visited: HashSet<u32, FxBuildHasher> = HashSet::default();
        let mut stack: Vec<u32> = Vec::new();
        for (i, root) in roots.iter().enumerate() {
            let label = labels.get(i).copied().unwrap_or("");
            let name = if label.is_empty() { format!("f{i}") } else { label.to_string() };
            let _ = writeln!(out, "  root{i} [label=\"{name}\", shape=plaintext];");
            let _ =
                writeln!(out, "  root{i} -> node{}{};", root.node_index(), style(root.0, false));
            stack.push(root.node_index());
        }
        while let Some(idx) = stack.pop() {
            if !visited.insert(idx) || idx == 0 {
                continue;
            }
            let n = &self.nodes[idx as usize];
            if n.level == TERMINAL_LEVEL {
                continue;
            }
            let var = self.level_to_var[n.level as usize];
            let _ = writeln!(out, "  node{idx} [label=\"x{var}\", shape=circle];");
            let _ = writeln!(out, "  node{idx} -> node{}{};", n.lo >> 1, style(n.lo, true));
            let _ = writeln!(out, "  node{idx} -> node{}{};", n.hi >> 1, style(n.hi, false));
            stack.push(n.lo >> 1);
            stack.push(n.hi >> 1);
        }
        out.push_str("}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_mentions_all_nodes() {
        let mut m = BddManager::new();
        let vars = m.new_vars(2);
        let (a, b) = (m.var(vars[0]), m.var(vars[1]));
        let f = m.xor(a, b);
        let dot = m.to_dot(&[f], &["parity"]);
        assert!(dot.starts_with("digraph"));
        assert!(dot.contains("parity"));
        assert!(dot.contains("x0"));
        assert!(dot.contains("x1"));
        // XOR needs a complemented else edge somewhere.
        assert!(dot.contains("style=dashed"));
        // OR stores a regular (dotted) else edge: ¬(¬a ∧ ¬b) branches to b.
        let g = m.or(a, b);
        let dot = m.to_dot(&[g], &["either"]);
        assert!(dot.contains("style=dotted"));
    }

    #[test]
    fn complemented_root_renders_dashed() {
        let mut m = BddManager::new();
        let v = m.new_var();
        let x = m.var(v);
        let nx = m.not(x);
        let dot = m.to_dot(&[nx], &["notx"]);
        let root_line = dot.lines().find(|l| l.contains("root0 ->")).expect("root edge");
        assert!(root_line.contains("style=dashed"), "negated root must render dashed: {root_line}");
    }
}
