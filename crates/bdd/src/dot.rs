//! Graphviz (DOT) export for debugging and documentation.

use crate::hasher::FxBuildHasher;
use crate::manager::{Bdd, BddManager, TERMINAL_LEVEL};
use std::collections::HashSet;
use std::fmt::Write as _;

impl BddManager {
    /// Renders the shared graph of `roots` as a Graphviz `digraph`.
    ///
    /// Solid edges are `then` branches, dashed edges `else` branches.
    /// `labels` names the roots; missing labels fall back to `f<i>`.
    pub fn to_dot(&self, roots: &[Bdd], labels: &[&str]) -> String {
        let mut out = String::from("digraph bdd {\n  rankdir=TB;\n");
        out.push_str("  node0 [label=\"0\", shape=box];\n");
        out.push_str("  node1 [label=\"1\", shape=box];\n");
        let mut visited: HashSet<u32, FxBuildHasher> = HashSet::default();
        let mut stack: Vec<u32> = Vec::new();
        for (i, root) in roots.iter().enumerate() {
            let label = labels.get(i).copied().unwrap_or("");
            let name = if label.is_empty() { format!("f{i}") } else { label.to_string() };
            let _ = writeln!(out, "  root{i} [label=\"{name}\", shape=plaintext];");
            let _ = writeln!(out, "  root{i} -> node{};", root.0);
            stack.push(root.0);
        }
        while let Some(idx) = stack.pop() {
            if !visited.insert(idx) || idx <= 1 {
                continue;
            }
            let n = &self.nodes[idx as usize];
            if n.level == TERMINAL_LEVEL {
                continue;
            }
            let var = self.level_to_var[n.level as usize];
            let _ = writeln!(out, "  node{idx} [label=\"x{var}\", shape=circle];");
            let _ = writeln!(out, "  node{idx} -> node{} [style=dashed];", n.lo);
            let _ = writeln!(out, "  node{idx} -> node{};", n.hi);
            stack.push(n.lo);
            stack.push(n.hi);
        }
        out.push_str("}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_mentions_all_nodes() {
        let mut m = BddManager::new();
        let vars = m.new_vars(2);
        let (a, b) = (m.var(vars[0]), m.var(vars[1]));
        let f = m.xor(a, b);
        let dot = m.to_dot(&[f], &["parity"]);
        assert!(dot.starts_with("digraph"));
        assert!(dot.contains("parity"));
        assert!(dot.contains("x0"));
        assert!(dot.contains("x1"));
        assert!(dot.contains("style=dashed"));
    }
}
