//! The node store: per-level unique tables, reference counting and garbage
//! collection.

use crate::budget::{Budget, BudgetExceeded};
use crate::cache::OpCache;
use crate::hasher::pair_hash;
use bbec_trace::{FlightOp, FlightRecorder, OpTelemetry, Progress, Tracer};

/// A handle to a BDD node owned by a [`BddManager`].
///
/// A handle is a **tagged edge**: bits `[31:1]` are the node index inside
/// the manager and bit `0` is the complement flag, so `f` and `¬f` share
/// one node and negation is a single bit flip. Copying a handle is free
/// and does not affect reference counts. A handle obtained from a manager
/// stays valid until the node is reclaimed by garbage collection; protect
/// handles you keep across [`BddManager::collect_garbage`] or
/// [`BddManager::reorder`] with [`BddManager::protect`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Bdd(pub(crate) u32);

impl Bdd {
    /// The raw tagged-edge bits (node index `<< 1 |` complement flag),
    /// mainly useful for debugging.
    pub fn index(self) -> u32 {
        self.0
    }

    /// Returns `true` if this handle is one of the two constants.
    pub fn is_const(self) -> bool {
        self.0 <= 1
    }

    /// The node index this edge points at (complement bit stripped).
    #[inline]
    pub(crate) fn node_index(self) -> u32 {
        self.0 >> 1
    }

    /// Whether this edge carries the complement tag.
    #[inline]
    pub(crate) fn is_complemented(self) -> bool {
        self.0 & 1 == 1
    }
}

/// Tagged edge of the constant `true`: the terminal node, uncomplemented.
pub(crate) const TRUE: u32 = 0;
/// Tagged edge of the constant `false`: the terminal node, complemented.
pub(crate) const FALSE: u32 = 1;

/// A BDD variable, identified independently of its current level.
///
/// Variables keep their identity when the manager reorders levels; use
/// [`BddManager::level_of`] to find where a variable currently sits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BddVar(pub(crate) u32);

impl BddVar {
    /// The creation index of this variable (0 for the first `new_var`).
    pub fn index(self) -> u32 {
        self.0
    }
}

pub(crate) const NIL: u32 = u32::MAX;
pub(crate) const TERMINAL_LEVEL: u32 = u32::MAX;
/// Reference count value treated as "pinned forever" (constants, projections).
const STICKY_REFS: u32 = u32::MAX / 2;

/// One stored node. `lo`/`hi` are **tagged edges** ([`Bdd`] bit layout);
/// the canonical form keeps `hi` uncomplemented — a complemented then-edge
/// is normalised away by `mk` into the complement bit of the parent edge.
/// `next` chains node *indices* (untagged) through the unique table.
#[derive(Debug, Clone)]
pub(crate) struct Node {
    pub(crate) level: u32,
    pub(crate) lo: u32,
    pub(crate) hi: u32,
    pub(crate) refs: u32,
    /// Next node in the unique-table bucket chain, or `NIL`.
    pub(crate) next: u32,
}

/// One unique table per level, chained through `Node::next`.
#[derive(Debug, Default)]
pub(crate) struct SubTable {
    pub(crate) buckets: Vec<u32>,
    pub(crate) count: usize,
}

impl SubTable {
    fn new() -> Self {
        SubTable { buckets: vec![NIL; 16], count: 0 }
    }

    #[inline]
    fn bucket_of(&self, lo: u32, hi: u32) -> usize {
        (pair_hash(lo, hi) as usize) & (self.buckets.len() - 1)
    }
}

/// Settings steering automatic sifting inside [`BddManager::maybe_reorder`].
#[derive(Debug, Clone)]
pub struct ReorderSettings {
    /// Reordering is considered once the live node count exceeds this value.
    pub threshold: usize,
    /// After a reordering pass the threshold is set to `live * growth`.
    pub growth: f64,
    /// A variable stops sifting in one direction once the total size exceeds
    /// `max_growth` times the size at the start of its sift.
    pub max_growth: f64,
    /// Whether `maybe_reorder` does anything at all.
    pub enabled: bool,
}

impl Default for ReorderSettings {
    fn default() -> Self {
        ReorderSettings { threshold: 4096, growth: 2.0, max_growth: 1.2, enabled: true }
    }
}

/// Usage statistics of a manager, in the units the paper reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BddStats {
    /// Currently live (externally or internally referenced) nodes, excluding
    /// the two constants.
    pub live_nodes: usize,
    /// High-water mark of `live_nodes` since creation or the last
    /// [`BddManager::reset_peak`].
    pub peak_live_nodes: usize,
    /// Total nodes ever allocated (excluding reuse from the free list).
    pub allocated_nodes: usize,
    /// Number of completed reordering passes.
    pub reorderings: usize,
    /// Nodes reclaimed by garbage collection so far.
    pub collected_nodes: usize,
}

/// Owner of all BDD nodes; every operation is a method on the manager.
///
/// # Example
///
/// ```rust
/// use bbec_bdd::BddManager;
///
/// let mut m = BddManager::new();
/// let v = m.new_var();
/// let f = m.var(v);
/// let g = m.not(f);
/// let h = m.or(f, g);           // x ∨ ¬x ≡ 1
/// assert_eq!(h, m.constant(true));
/// ```
#[derive(Debug)]
pub struct BddManager {
    pub(crate) nodes: Vec<Node>,
    pub(crate) free: Vec<u32>,
    pub(crate) tables: Vec<SubTable>,
    pub(crate) level_to_var: Vec<u32>,
    pub(crate) var_to_level: Vec<u32>,
    /// Projection node for each variable (always protected).
    pub(crate) projections: Vec<u32>,
    pub(crate) cache: OpCache,
    pub(crate) dead: usize,
    live: usize,
    peak: usize,
    allocated: usize,
    reorderings: usize,
    collected: usize,
    pub(crate) reorder_settings: ReorderSettings,
    /// Resource caps enforced by the budgeted `try_*` operations.
    budget: Option<Budget>,
    /// Cumulative apply steps (cache-miss recursion steps) ever charged.
    steps: u64,
    /// `steps` value when the current budget window was armed.
    window_start: u64,
    /// Completed garbage-collection passes.
    gc_passes: u64,
    /// Observability sink; disabled (free) by default.
    pub(crate) tracer: Tracer,
    /// Heartbeat engine, ticked from the amortised pulse in
    /// [`BddManager::charge_step`]; disabled (free) by default.
    progress: Progress,
    /// Postmortem ring of recent operations, armed alongside the tracer.
    flight: FlightRecorder,
    /// Cache evictions already attributed to a flight `apply_window` op.
    flight_evictions: u64,
}

impl Default for BddManager {
    fn default() -> Self {
        Self::new()
    }
}

impl BddManager {
    /// Creates an empty manager containing only the terminal node (both
    /// constants are edges to it: `true` plain, `false` complemented).
    pub fn new() -> Self {
        let terminal = Node { level: TERMINAL_LEVEL, lo: 0, hi: 0, refs: STICKY_REFS, next: NIL };
        BddManager {
            nodes: vec![terminal],
            free: Vec::new(),
            tables: Vec::new(),
            level_to_var: Vec::new(),
            var_to_level: Vec::new(),
            projections: Vec::new(),
            cache: OpCache::new(),
            dead: 0,
            live: 0,
            peak: 0,
            allocated: 0,
            reorderings: 0,
            collected: 0,
            reorder_settings: ReorderSettings { enabled: false, ..ReorderSettings::default() },
            budget: None,
            steps: 0,
            window_start: 0,
            gc_passes: 0,
            tracer: Tracer::disabled(),
            progress: Progress::disabled(),
            flight: FlightRecorder::disabled(),
            flight_evictions: 0,
        }
    }

    /// Installs the observability sink. Pass an enabled [`Tracer`] to
    /// collect spans (GC, reordering), histograms (apply recursion depth,
    /// unique-table probe lengths) and per-operation cache counters; the
    /// default disabled tracer costs a single branch on the hot paths.
    ///
    /// An enabled tracer also arms the flight recorder (a bounded ring of
    /// recent operations dumped on aborts, see
    /// [`BddManager::dump_flight_recorder`]); a disabled tracer disarms it.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.flight = if tracer.enabled() {
            FlightRecorder::with_capacity(bbec_trace::DEFAULT_FLIGHT_CAPACITY)
        } else {
            FlightRecorder::disabled()
        };
        self.flight_evictions = self.cache.evictions();
        self.tracer = tracer;
    }

    /// Installs the heartbeat engine. An enabled [`Progress`] is ticked
    /// from the same amortised point as the deadline check (every 1024
    /// apply steps) with this manager's live node count and the fraction
    /// of the current budget window consumed; the default disabled engine
    /// costs one branch per pulse, nothing per step.
    pub fn set_progress(&mut self, progress: Progress) {
        self.progress = progress;
    }

    /// The recent-operation ring armed by [`BddManager::set_tracer`].
    pub fn flight_recorder(&self) -> &FlightRecorder {
        &self.flight
    }

    /// Dumps the flight recorder's retained tail into the tracer (as
    /// `flight.dump` + `flight.op` record events). Call on the abort path
    /// — budget exceeded, deadline expiry — so the trace ships a
    /// postmortem of the last operations; a panic unwinding through the
    /// manager dumps automatically (see its `Drop`). No-op when tracer or
    /// recorder is disabled.
    pub fn dump_flight_recorder(&self, reason: &str) {
        self.flight.dump(&self.tracer, reason);
    }

    /// The currently installed observability sink.
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// Per-operation computed-table `(name, hits, misses)` rows, for
    /// cache-effectiveness telemetry per operator kind.
    pub fn cache_stats_by_op(&self) -> Vec<(&'static str, u64, u64)> {
        self.cache.stats_by_op().to_vec()
    }

    /// Rebounds the computed table to `2^bits` entries (clamped to
    /// [`crate::MIN_CACHE_BITS`]`..=`[`crate::MAX_CACHE_BITS`]). A full
    /// table is evicted wholesale on the next insert; correctness is
    /// unaffected, only recomputation cost.
    pub fn set_cache_capacity_bits(&mut self, bits: u32) {
        self.cache.set_capacity_bits(bits);
    }

    /// The current computed-table capacity exponent.
    pub fn cache_capacity_bits(&self) -> u32 {
        self.cache.capacity_bits()
    }

    /// Number of forced whole-table evictions caused by the capacity bound
    /// (distinct from the clears every GC/reorder pass performs anyway).
    pub fn cache_evictions(&self) -> u64 {
        self.cache.evictions()
    }

    /// Installs (or clears) the resource budget and starts a fresh
    /// step-accounting window.
    ///
    /// The budget is enforced only by the fallible `try_*` operations; the
    /// plain infallible operations, variable creation and reordering run
    /// unbudgeted. Hitting a cap aborts the in-flight operation with a
    /// [`BudgetExceeded`] value and leaves the manager fully usable: every
    /// protected node survives, and the aborted operation's intermediates
    /// are dead nodes reclaimed by the next [`BddManager::collect_garbage`].
    pub fn set_budget(&mut self, budget: Option<Budget>) {
        self.budget = budget;
        self.window_start = self.steps;
    }

    /// The currently installed budget, if any.
    pub fn budget(&self) -> Option<Budget> {
        self.budget
    }

    /// Cumulative operation counters for telemetry; diff two snapshots with
    /// [`OpTelemetry::since`] to cost one window of work.
    pub fn telemetry(&self) -> OpTelemetry {
        OpTelemetry {
            apply_steps: self.steps,
            cache_hits: self.cache.hits(),
            cache_misses: self.cache.misses(),
            gc_passes: self.gc_passes,
            reorder_passes: self.reorderings as u64,
            peak_live_nodes: self.peak,
        }
    }

    /// Charges one apply step against the current budget window.
    #[inline]
    pub(crate) fn charge_step(&mut self) -> Result<(), BudgetExceeded> {
        self.steps += 1;
        if self.steps & 0x3FF == 0 {
            // Amortised slow path: clock read for the deadline, heartbeat
            // tick, flight-recorder window — none belong on the per-step
            // path, and all run fine without a budget armed.
            self.pulse()?;
        }
        let Some(budget) = &self.budget else { return Ok(()) };
        if let Some(limit) = budget.max_steps {
            if self.steps - self.window_start > limit {
                return Err(BudgetExceeded::Steps { limit });
            }
        }
        Ok(())
    }

    /// The every-1024-steps slow path of [`BddManager::charge_step`].
    #[cold]
    fn pulse(&mut self) -> Result<(), BudgetExceeded> {
        if self.flight.enabled() {
            let evictions = self.cache.evictions();
            self.flight.record(FlightOp {
                step: self.steps,
                kind: "apply_window",
                a: self.live as u64,
                b: evictions - self.flight_evictions,
            });
            self.flight_evictions = evictions;
        }
        if self.progress.enabled() {
            self.progress.tick(1024, self.live as u64, self.budget_fraction());
        }
        if let Some(deadline) = self.budget.as_ref().and_then(|b| b.deadline) {
            if std::time::Instant::now() >= deadline {
                return Err(BudgetExceeded::Deadline);
            }
        }
        Ok(())
    }

    /// Fraction of the current budget window consumed: the furthest-along
    /// of the step and live-node budgets, clamped to 1. `None` without an
    /// armed budget (or one with no step/node caps).
    pub fn budget_fraction(&self) -> Option<f64> {
        let budget = self.budget.as_ref()?;
        let mut frac: Option<f64> = None;
        if let Some(limit) = budget.max_steps.filter(|&l| l > 0) {
            frac = Some((self.steps - self.window_start) as f64 / limit as f64);
        }
        if let Some(limit) = budget.max_live_nodes.filter(|&l| l > 0) {
            let f = self.live as f64 / limit as f64;
            frac = Some(frac.map_or(f, |g| g.max(f)));
        }
        frac.map(|f| f.min(1.0))
    }

    /// Runs `op` with the budget temporarily removed; the infallible
    /// operation wrappers are built on this.
    pub(crate) fn run_unbudgeted<T>(
        &mut self,
        op: impl FnOnce(&mut Self) -> Result<T, BudgetExceeded>,
    ) -> T {
        let saved = self.budget.take();
        let result = op(self);
        self.budget = saved;
        result.expect("BDD operation without a budget cannot be aborted")
    }

    /// Creates a manager with automatic reordering enabled, mirroring the
    /// paper's "dynamic reordering was activated during all experiments".
    pub fn with_reordering(settings: ReorderSettings) -> Self {
        let mut m = Self::new();
        m.reorder_settings = settings;
        m
    }

    /// Replaces the automatic-reordering settings. Used by warm-pool
    /// consumers to reconfigure a recycled manager ([`BddManager::reset`]
    /// restores the disabled default of [`BddManager::new`]).
    pub fn set_reorder_settings(&mut self, settings: ReorderSettings) {
        self.reorder_settings = settings;
    }

    /// Restores the manager to the state of a freshly constructed
    /// [`BddManager::new`] while keeping the big allocations warm: the node
    /// arena's capacity and the computed table's hash-map allocation
    /// survive, so a recycled manager skips the growth/rehash ramp-up of a
    /// cold one. Every variable, node, statistic, budget and observability
    /// sink is dropped — behaviour after a reset is bit-identical to a
    /// fresh manager's.
    pub fn reset(&mut self) {
        self.nodes.truncate(1);
        self.nodes[0] = Node { level: TERMINAL_LEVEL, lo: 0, hi: 0, refs: STICKY_REFS, next: NIL };
        self.free.clear();
        self.tables.clear();
        self.level_to_var.clear();
        self.var_to_level.clear();
        self.projections.clear();
        self.cache.reset();
        self.dead = 0;
        self.live = 0;
        self.peak = 0;
        self.allocated = 0;
        self.reorderings = 0;
        self.collected = 0;
        self.reorder_settings = ReorderSettings { enabled: false, ..ReorderSettings::default() };
        self.budget = None;
        self.steps = 0;
        self.window_start = 0;
        self.gc_passes = 0;
        self.tracer = Tracer::disabled();
        self.progress = Progress::disabled();
        self.flight = FlightRecorder::disabled();
        self.flight_evictions = 0;
    }

    /// The constant `true` or `false` function.
    pub fn constant(&self, value: bool) -> Bdd {
        Bdd(if value { TRUE } else { FALSE })
    }

    /// Number of variables created so far.
    pub fn var_count(&self) -> usize {
        self.var_to_level.len()
    }

    /// Creates a fresh variable at the bottom of the current order.
    pub fn new_var(&mut self) -> BddVar {
        let var = self.var_to_level.len() as u32;
        let level = self.level_to_var.len() as u32;
        self.var_to_level.push(level);
        self.level_to_var.push(var);
        self.tables.push(SubTable::new());
        let node = self.mk(level, FALSE, TRUE);
        // Projections are pinned so `var()` handles never dangle. The fresh
        // node was counted as dead by `mk`; un-count it.
        self.nodes[node.node_index() as usize].refs = STICKY_REFS;
        self.dead -= 1;
        self.projections.push(node.0);
        BddVar(var)
    }

    /// Creates `n` fresh variables.
    pub fn new_vars(&mut self, n: usize) -> Vec<BddVar> {
        (0..n).map(|_| self.new_var()).collect()
    }

    /// The projection function of `var` (the BDD for the literal `var`).
    ///
    /// # Panics
    ///
    /// Panics if `var` does not belong to this manager.
    pub fn var(&self, var: BddVar) -> Bdd {
        Bdd(self.projections[var.0 as usize])
    }

    /// The negative literal `¬var` — built lazily, so it needs `&mut self`.
    pub fn nvar(&mut self, var: BddVar) -> Bdd {
        let v = self.var(var);
        self.not(v)
    }

    /// Current level of a variable (0 is the topmost level).
    pub fn level_of(&self, var: BddVar) -> u32 {
        self.var_to_level[var.0 as usize]
    }

    /// Variable currently sitting at `level`.
    pub fn var_at_level(&self, level: u32) -> BddVar {
        BddVar(self.level_to_var[level as usize])
    }

    /// The variable labelling the root node of `f`.
    ///
    /// Returns `None` for the constants.
    pub fn root_var(&self, f: Bdd) -> Option<BddVar> {
        let level = self.nodes[f.node_index() as usize].level;
        if level == TERMINAL_LEVEL {
            None
        } else {
            Some(BddVar(self.level_to_var[level as usize]))
        }
    }

    /// The `else` (low, `var = 0`) cofactor of the root node of `f`.
    ///
    /// # Panics
    ///
    /// Panics if `f` is a constant.
    pub fn low(&self, f: Bdd) -> Bdd {
        assert!(!f.is_const(), "constants have no cofactors");
        // The root's complement tag distributes onto both child edges.
        Bdd(self.nodes[f.node_index() as usize].lo ^ (f.0 & 1))
    }

    /// The `then` (high, `var = 1`) cofactor of the root node of `f`.
    ///
    /// # Panics
    ///
    /// Panics if `f` is a constant.
    pub fn high(&self, f: Bdd) -> Bdd {
        assert!(!f.is_const(), "constants have no cofactors");
        Bdd(self.nodes[f.node_index() as usize].hi ^ (f.0 & 1))
    }

    /// Level of the node a tagged edge points at.
    #[inline]
    pub(crate) fn level(&self, edge: u32) -> u32 {
        self.nodes[(edge >> 1) as usize].level
    }

    /// Finds or creates the node `(level, lo, hi)`, infallibly.
    ///
    /// This is the unbudgeted path used by variable creation, reordering
    /// and I/O — contexts where an abort mid-mutation would be unsound.
    /// The budgeted operator core goes through [`BddManager::try_mk`].
    pub(crate) fn mk(&mut self, level: u32, lo: u32, hi: u32) -> Bdd {
        match self.mk_checked(level, lo, hi, false) {
            Ok(node) => node,
            Err(_) => unreachable!("unbudgeted mk cannot be aborted"),
        }
    }

    /// Budgeted variant of [`BddManager::mk`]: fails with
    /// [`BudgetExceeded::Nodes`] if allocating a fresh node would grow the
    /// manager past [`Budget::max_live_nodes`].
    pub(crate) fn try_mk(&mut self, level: u32, lo: u32, hi: u32) -> Result<Bdd, BudgetExceeded> {
        self.mk_checked(level, lo, hi, true)
    }

    /// Finds or creates the node for the edge triple `(level, lo, hi)`.
    ///
    /// Maintains the three canonicity invariants: no node with equal
    /// children, no two nodes with the same `(level, lo, hi)` triple, and
    /// no complemented then-edge — a complement tag on `hi` is pushed onto
    /// both children and returned on the result edge instead, so `f` and
    /// `¬f` always resolve to the same stored node.
    fn mk_checked(
        &mut self,
        level: u32,
        lo: u32,
        hi: u32,
        budgeted: bool,
    ) -> Result<Bdd, BudgetExceeded> {
        if lo == hi {
            return Ok(Bdd(lo));
        }
        // Canonical form: complement tags live on incoming edges only.
        let flip = hi & 1;
        let (lo, hi) = (lo ^ flip, hi ^ flip);
        debug_assert!(self.level(lo) > level && self.level(hi) > level, "children must be below");
        let table = &self.tables[level as usize];
        let bucket = table.bucket_of(lo, hi);
        let mut cursor = table.buckets[bucket];
        let mut probe: u64 = 0;
        while cursor != NIL {
            let n = &self.nodes[cursor as usize];
            probe += 1;
            if n.lo == lo && n.hi == hi {
                // A dead hit is implicitly resurrected: its children were
                // never decremented, so nothing needs fixing up here.
                if self.tracer.enabled() {
                    self.tracer.record("bdd.unique.probe", probe);
                }
                return Ok(Bdd((cursor << 1) | flip));
            }
            cursor = n.next;
        }
        if self.tracer.enabled() {
            self.tracer.record("bdd.unique.probe", probe);
        }
        // Allocate. (Garbage collection mid-operation would free the
        // unprotected intermediates held on the recursion stack, so the
        // limit can only abort, never rescue.)
        if budgeted {
            if let Some(limit) = self.budget.as_ref().and_then(|b| b.max_live_nodes) {
                if self.live >= limit {
                    return Err(BudgetExceeded::Nodes { limit });
                }
            }
        }
        let idx = if let Some(idx) = self.free.pop() {
            self.nodes[idx as usize] = Node { level, lo, hi, refs: 0, next: NIL };
            idx
        } else {
            let idx = self.nodes.len() as u32;
            self.nodes.push(Node { level, lo, hi, refs: 0, next: NIL });
            self.allocated += 1;
            idx
        };
        self.inc_node(lo);
        self.inc_node(hi);
        self.live += 1;
        // Fresh nodes start unreferenced; they count as dead until a parent
        // or an external protection claims them.
        self.dead += 1;
        if self.live > self.peak {
            self.peak = self.live;
        }
        self.table_insert(level, idx);
        Ok(Bdd((idx << 1) | flip))
    }

    pub(crate) fn table_insert(&mut self, level: u32, idx: u32) {
        if self.tables[level as usize].count + 1 > self.tables[level as usize].buckets.len() {
            // Grow and rehash the chains.
            let new_len = self.tables[level as usize].buckets.len() * 2;
            let old =
                std::mem::replace(&mut self.tables[level as usize].buckets, vec![NIL; new_len]);
            for mut cursor in old {
                while cursor != NIL {
                    let next = self.nodes[cursor as usize].next;
                    let (lo, hi) = {
                        let n = &self.nodes[cursor as usize];
                        (n.lo, n.hi)
                    };
                    let b = (pair_hash(lo, hi) as usize) & (new_len - 1);
                    self.nodes[cursor as usize].next = self.tables[level as usize].buckets[b];
                    self.tables[level as usize].buckets[b] = cursor;
                    cursor = next;
                }
            }
        }
        let (lo, hi) = {
            let n = &self.nodes[idx as usize];
            (n.lo, n.hi)
        };
        let table = &mut self.tables[level as usize];
        let bucket = table.bucket_of(lo, hi);
        self.nodes[idx as usize].next = table.buckets[bucket];
        table.buckets[bucket] = idx;
        table.count += 1;
    }

    /// Unlinks `idx` from its unique table (it must be present).
    pub(crate) fn table_remove(&mut self, level: u32, idx: u32) {
        let (lo, hi) = {
            let n = &self.nodes[idx as usize];
            (n.lo, n.hi)
        };
        let table = &self.tables[level as usize];
        let bucket = table.bucket_of(lo, hi);
        let mut cursor = self.tables[level as usize].buckets[bucket];
        if cursor == idx {
            self.tables[level as usize].buckets[bucket] = self.nodes[idx as usize].next;
        } else {
            loop {
                let next = self.nodes[cursor as usize].next;
                assert_ne!(next, NIL, "node missing from its unique table");
                if next == idx {
                    self.nodes[cursor as usize].next = self.nodes[idx as usize].next;
                    break;
                }
                cursor = next;
            }
        }
        self.tables[level as usize].count -= 1;
        self.nodes[idx as usize].next = NIL;
    }

    /// Increments the reference count of the node a tagged edge points at.
    #[inline]
    pub(crate) fn inc_node(&mut self, edge: u32) {
        let node = &mut self.nodes[(edge >> 1) as usize];
        if node.refs < STICKY_REFS {
            let was_dead = node.refs == 0 && node.level != TERMINAL_LEVEL;
            node.refs += 1;
            if was_dead {
                self.dead -= 1;
            }
        }
    }

    /// Decrements the reference count of the node a tagged edge points at.
    #[inline]
    pub(crate) fn dec_node(&mut self, edge: u32) {
        let node = &mut self.nodes[(edge >> 1) as usize];
        if node.refs >= STICKY_REFS || node.level == TERMINAL_LEVEL {
            return;
        }
        debug_assert!(node.refs > 0, "reference count underflow");
        node.refs -= 1;
        if node.refs == 0 {
            self.dead += 1;
        }
    }

    /// Protects `f` from garbage collection (increments its reference count).
    ///
    /// Returns `f` for convenient chaining.
    pub fn protect(&mut self, f: Bdd) -> Bdd {
        self.inc_node(f.0);
        f
    }

    /// Releases a protection previously taken with [`BddManager::protect`].
    ///
    /// The node is not freed immediately; it becomes reclaimable by the next
    /// [`BddManager::collect_garbage`].
    pub fn release(&mut self, f: Bdd) {
        self.dec_node(f.0);
    }

    /// Number of dead (unreferenced, reclaimable) nodes.
    pub fn dead_nodes(&self) -> usize {
        self.dead
    }

    /// Reclaims every dead node and clears the operation caches.
    ///
    /// Returns the number of nodes freed.
    pub fn collect_garbage(&mut self) -> usize {
        if self.dead == 0 {
            return 0;
        }
        let span = if self.tracer.enabled() {
            let s = self.tracer.span("bdd.gc");
            s.set_attr("live_before", self.live);
            Some(s)
        } else {
            None
        };
        self.cache.clear();
        let mut freed = 0;
        // Top-down: freeing a parent may kill children at lower levels only.
        for level in 0..self.tables.len() as u32 {
            let bucket_count = self.tables[level as usize].buckets.len();
            for b in 0..bucket_count {
                let mut prev = NIL;
                let mut cursor = self.tables[level as usize].buckets[b];
                while cursor != NIL {
                    let next = self.nodes[cursor as usize].next;
                    if self.nodes[cursor as usize].refs == 0 {
                        if prev == NIL {
                            self.tables[level as usize].buckets[b] = next;
                        } else {
                            self.nodes[prev as usize].next = next;
                        }
                        self.tables[level as usize].count -= 1;
                        let (lo, hi) = {
                            let n = &self.nodes[cursor as usize];
                            (n.lo, n.hi)
                        };
                        self.dec_node(lo);
                        self.dec_node(hi);
                        self.nodes[cursor as usize] =
                            Node { level: 0, lo: NIL, hi: NIL, refs: 0, next: NIL };
                        self.free.push(cursor);
                        self.dead -= 1;
                        self.live -= 1;
                        freed += 1;
                    } else {
                        prev = cursor;
                    }
                    cursor = next;
                }
            }
        }
        debug_assert_eq!(self.dead, 0);
        self.collected += freed;
        self.gc_passes += 1;
        if let Some(s) = span {
            s.set_attr("freed", freed);
            s.set_attr("live_after", self.live);
            self.tracer.record("bdd.gc.freed", freed as u64);
        }
        self.flight.record(FlightOp {
            step: self.steps,
            kind: "gc",
            a: freed as u64,
            b: self.live as u64,
        });
        freed
    }

    /// Current statistics snapshot.
    pub fn stats(&self) -> BddStats {
        BddStats {
            live_nodes: self.live,
            peak_live_nodes: self.peak,
            allocated_nodes: self.allocated,
            reorderings: self.reorderings,
            collected_nodes: self.collected,
        }
    }

    /// Resets the peak-live-nodes high-water mark to the current live count.
    pub fn reset_peak(&mut self) {
        self.peak = self.live;
    }

    pub(crate) fn note_reordering(&mut self) {
        self.reorderings += 1;
    }

    /// Records one flight-recorder operation at the current step count
    /// (no-op while the recorder is disarmed).
    pub(crate) fn flight_note(&mut self, kind: &'static str, a: u64, b: u64) {
        self.flight.record(FlightOp { step: self.steps, kind, a, b });
    }

    pub(crate) fn live_count(&self) -> usize {
        self.live
    }

    pub(crate) fn adjust_live(&mut self, delta: isize) {
        self.live = (self.live as isize + delta) as usize;
        if self.live > self.peak {
            self.peak = self.live;
        }
    }

    /// Exhaustive structural self-check used by the test-suite.
    ///
    /// Verifies the ROBDD invariants (ordered, reduced, hash-consed), the
    /// complement-edge canonical form (no complemented then-edges) and that
    /// stored reference counts match the actual parent counts.
    ///
    /// # Panics
    ///
    /// Panics with a description of the first violated invariant.
    pub fn check_invariants(&self) {
        let mut seen = vec![false; self.nodes.len()];
        let mut parents = vec![0u64; self.nodes.len()];
        for (level, table) in self.tables.iter().enumerate() {
            let mut chained = 0;
            for &head in &table.buckets {
                let mut cursor = head;
                while cursor != NIL {
                    let n = &self.nodes[cursor as usize];
                    assert_eq!(n.level as usize, level, "node in wrong table");
                    assert!(!seen[cursor as usize], "node chained twice");
                    seen[cursor as usize] = true;
                    assert_ne!(n.lo, n.hi, "unreduced node");
                    assert_eq!(n.hi & 1, 0, "complemented then-edge violates canonical form");
                    assert!(
                        self.level(n.lo) > n.level && self.level(n.hi) > n.level,
                        "order violated"
                    );
                    parents[(n.lo >> 1) as usize] += 1;
                    parents[(n.hi >> 1) as usize] += 1;
                    chained += 1;
                    cursor = n.next;
                }
            }
            assert_eq!(chained, table.count, "table count out of sync");
        }
        let mut free_set = vec![false; self.nodes.len()];
        for &f in &self.free {
            free_set[f as usize] = true;
        }
        for idx in 1..self.nodes.len() {
            if free_set[idx] {
                continue;
            }
            assert!(seen[idx], "live node missing from unique table");
            let n = &self.nodes[idx];
            if n.refs < STICKY_REFS {
                assert!(
                    u64::from(n.refs) >= parents[idx],
                    "refcount {} below parent count {} at node {}",
                    n.refs,
                    parents[idx],
                    idx
                );
            }
        }
    }
}

impl Drop for BddManager {
    fn drop(&mut self) {
        // A panic unwinding through a traced manager still gets its
        // postmortem: the last recorded operations reach the trace (and
        // any streaming sink) before the ring is lost. Orderly drops stay
        // silent — the abort paths dump explicitly with a precise reason.
        if std::thread::panicking() {
            self.flight.dump(&self.tracer, "panic");
        }
    }
}

// The parallel check engine moves whole managers into scoped worker
// threads (shared-nothing: one private manager per worker). This assertion
// turns any future non-`Send` field into a compile error at the source.
const _: fn() = || {
    fn assert_send<T: Send>() {}
    assert_send::<BddManager>();
};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants_are_distinct() {
        let m = BddManager::new();
        assert_ne!(m.constant(false), m.constant(true));
        assert!(m.constant(true).is_const());
    }

    #[test]
    fn mk_is_hash_consed() {
        let mut m = BddManager::new();
        let v = m.new_var();
        let a = m.var(v);
        let b = m.var(v);
        assert_eq!(a, b);
        let n1 = m.mk(0, 1, 0);
        let n2 = m.mk(0, 1, 0);
        assert_eq!(n1, n2);
        m.check_invariants();
    }

    #[test]
    fn mk_reduces_equal_children() {
        let mut m = BddManager::new();
        let _v = m.new_var();
        let n = m.mk(0, FALSE, FALSE);
        assert_eq!(n, m.constant(false));
        let n = m.mk(0, TRUE, TRUE);
        assert_eq!(n, m.constant(true));
    }

    #[test]
    fn complemented_then_edge_normalises_to_dual_node() {
        let mut m = BddManager::new();
        let v = m.new_var();
        // (level 0, lo=1, hi=0) is ¬x: it must reuse the projection node of
        // x with the complement bit set, not allocate a second node.
        let nx = m.mk(0, TRUE, FALSE);
        let x = m.var(v);
        assert_eq!(nx, m.not(x));
        assert_eq!(nx.node_index(), x.node_index(), "x and ¬x must share a node");
        assert!(nx.is_complemented() != x.is_complemented());
        m.check_invariants();
    }

    #[test]
    fn projection_shape() {
        let mut m = BddManager::new();
        let v = m.new_var();
        let f = m.var(v);
        assert_eq!(m.low(f), m.constant(false));
        assert_eq!(m.high(f), m.constant(true));
        assert_eq!(m.root_var(f), Some(v));
    }

    #[test]
    fn gc_reclaims_unprotected_nodes() {
        let mut m = BddManager::new();
        let v = m.new_var();
        let w = m.new_var();
        let (a, b) = (m.var(v), m.var(w));
        let f = m.and(a, b);
        let live_before = m.stats().live_nodes;
        // f is unprotected: one AND node dies.
        assert_eq!(m.dead_nodes(), 1);
        let freed = m.collect_garbage();
        assert_eq!(freed, 1);
        assert_eq!(m.stats().live_nodes, live_before - 1);
        // Rebuilding works fine afterwards.
        let f2 = m.and(a, b);
        assert!(!f2.is_const());
        let _ = f;
        m.check_invariants();
    }

    #[test]
    fn protect_prevents_collection() {
        let mut m = BddManager::new();
        let v = m.new_var();
        let w = m.new_var();
        let (a, b) = (m.var(v), m.var(w));
        let f = m.and(a, b);
        m.protect(f);
        assert_eq!(m.collect_garbage(), 0);
        m.release(f);
        assert_eq!(m.collect_garbage(), 1);
        m.check_invariants();
    }

    #[test]
    fn resurrection_via_mk() {
        let mut m = BddManager::new();
        let v = m.new_var();
        let w = m.new_var();
        let (a, b) = (m.var(v), m.var(w));
        let f = m.and(a, b);
        assert_eq!(m.dead_nodes(), 1);
        let g = m.and(a, b); // cache or unique-table hit resurrects
        assert_eq!(f, g);
        m.check_invariants();
    }

    #[test]
    fn peak_tracks_high_water() {
        let mut m = BddManager::new();
        let vars = m.new_vars(8);
        let lits: Vec<Bdd> = vars.iter().map(|&v| m.var(v)).collect();
        let mut f = m.constant(true);
        for &l in &lits {
            f = m.and(f, l);
        }
        let peak = m.stats().peak_live_nodes;
        assert!(peak >= 8 + 7, "peak {peak} too small");
        m.collect_garbage();
        assert_eq!(m.stats().peak_live_nodes, peak);
    }
}
