//! Warm manager pool: a bounded, thread-safe stack of reset managers.
//!
//! A long-lived process that runs many checks pays the same ramp-up on
//! every one: the node arena grows from empty and the computed table's
//! hash map rehashes through every power of two. The pool amortises that
//! cost by recycling managers between checks — [`ManagerPool::recycle`]
//! calls [`BddManager::reset`], which drops every node, variable and
//! statistic but keeps the arena and table allocations warm, so the next
//! [`ManagerPool::acquire`] returns a manager that behaves bit-identically
//! to a fresh one while skipping the growth ramp.
//!
//! The pool is a plain mutex-guarded stack: acquisition order is
//! last-recycled-first (best cache locality), the bound caps idle memory,
//! and managers recycled into a full pool are simply dropped. Cloning a
//! pool clones the handle, not the managers — all clones share one stack.

use crate::manager::BddManager;
use crate::shared::{SharedConfig, SharedManager};
use std::sync::{Arc, Mutex};

/// Counters describing how effective a pool has been.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PoolStats {
    /// Acquisitions served by a recycled manager.
    pub hits: u64,
    /// Acquisitions that had to construct a fresh manager.
    pub misses: u64,
    /// Managers returned through [`ManagerPool::recycle`] and kept.
    pub recycled: u64,
    /// Managers dropped because the pool was full.
    pub dropped: u64,
    /// Managers currently idle in the pool.
    pub idle: usize,
}

#[derive(Debug)]
struct PoolInner {
    idle: Vec<BddManager>,
    /// Idle shared-memory managers; their persistent worker threads stay
    /// parked between checks, so recycling also skips thread spawning.
    shared_idle: Vec<SharedManager>,
    capacity: usize,
    hits: u64,
    misses: u64,
    recycled: u64,
    dropped: u64,
}

/// A bounded, shareable pool of warm [`BddManager`]s.
#[derive(Debug, Clone)]
pub struct ManagerPool {
    inner: Arc<Mutex<PoolInner>>,
}

impl ManagerPool {
    /// Creates a pool keeping at most `capacity` idle managers (a capacity
    /// of zero disables recycling — every acquire constructs fresh).
    pub fn new(capacity: usize) -> Self {
        ManagerPool {
            inner: Arc::new(Mutex::new(PoolInner {
                idle: Vec::new(),
                shared_idle: Vec::new(),
                capacity,
                hits: 0,
                misses: 0,
                recycled: 0,
                dropped: 0,
            })),
        }
    }

    /// Takes a manager from the pool, or constructs a fresh one when the
    /// pool is empty. Recycled managers have been [`BddManager::reset`] and
    /// are indistinguishable from fresh ones apart from their warm
    /// allocations.
    pub fn acquire(&self) -> BddManager {
        let mut inner = self.inner.lock().expect("pool lock poisoned");
        match inner.idle.pop() {
            Some(m) => {
                inner.hits += 1;
                m
            }
            None => {
                inner.misses += 1;
                BddManager::new()
            }
        }
    }

    /// Resets `manager` and returns it to the pool; drops it when the pool
    /// already holds its capacity of idle managers.
    pub fn recycle(&self, mut manager: BddManager) {
        manager.reset();
        let mut inner = self.inner.lock().expect("pool lock poisoned");
        if inner.idle.len() < inner.capacity {
            inner.idle.push(manager);
            inner.recycled += 1;
        } else {
            inner.dropped += 1;
        }
    }

    /// Takes a shared-memory manager whose sizing matches `config` exactly,
    /// or constructs a fresh one. Only exact-config matches are reused:
    /// table and cache capacities are fixed at construction, and a check
    /// that asked for different sizing must get it.
    pub fn acquire_shared(&self, config: SharedConfig) -> SharedManager {
        let mut inner = self.inner.lock().expect("pool lock poisoned");
        match inner.shared_idle.iter().position(|m| m.config() == config) {
            Some(i) => {
                inner.hits += 1;
                inner.shared_idle.swap_remove(i)
            }
            None => {
                inner.misses += 1;
                drop(inner);
                SharedManager::new(config)
            }
        }
    }

    /// Resets `manager` — clearing the unique table, the concurrent
    /// computed-cache residue and any armed budget — and returns it to the
    /// pool. Debug builds verify the reset manager's structural invariants
    /// before it can be handed to the next check.
    pub fn recycle_shared(&self, mut manager: SharedManager) {
        manager.reset();
        #[cfg(debug_assertions)]
        manager.check_invariants();
        let mut inner = self.inner.lock().expect("pool lock poisoned");
        if inner.shared_idle.len() < inner.capacity {
            inner.shared_idle.push(manager);
            inner.recycled += 1;
        } else {
            inner.dropped += 1;
        }
    }

    /// Effectiveness counters (hits, misses, recycled, dropped, idle).
    pub fn stats(&self) -> PoolStats {
        let inner = self.inner.lock().expect("pool lock poisoned");
        PoolStats {
            hits: inner.hits,
            misses: inner.misses,
            recycled: inner.recycled,
            dropped: inner.dropped,
            idle: inner.idle.len() + inner.shared_idle.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds a small function mix and returns a stable signature of the
    /// manager's end state (node count + one satisfying-assignment count).
    fn exercise(m: &mut BddManager) -> (usize, usize, f64) {
        let vars = m.new_vars(6);
        let lits: Vec<_> = vars.iter().map(|&v| m.var(v)).collect();
        let mut acc = m.constant(false);
        for pair in lits.chunks(2) {
            let t = m.and(pair[0], pair[1]);
            acc = m.xor(acc, t);
        }
        m.protect(acc);
        let stats = m.stats();
        (stats.live_nodes, stats.allocated_nodes, m.sat_count(acc))
    }

    #[test]
    fn recycled_manager_reproduces_fresh_results() {
        let pool = ManagerPool::new(2);
        let mut fresh = BddManager::new();
        let expect = exercise(&mut fresh);

        let mut first = pool.acquire();
        let _ = exercise(&mut first);
        pool.recycle(first);

        let mut second = pool.acquire();
        assert_eq!(second.var_count(), 0, "recycled manager must start empty");
        assert_eq!(second.stats().live_nodes, 0);
        assert_eq!(exercise(&mut second), expect, "recycled run must be bit-identical");
        second.check_invariants();
        pool.recycle(second);

        let s = pool.stats();
        assert_eq!(s.hits, 1);
        assert_eq!(s.misses, 1);
        assert_eq!(s.recycled, 2);
        assert_eq!(s.idle, 1);
    }

    #[test]
    fn capacity_bounds_idle_managers() {
        let pool = ManagerPool::new(1);
        pool.recycle(BddManager::new());
        pool.recycle(BddManager::new());
        let s = pool.stats();
        assert_eq!(s.idle, 1, "second recycle must be dropped");
        assert_eq!(s.dropped, 1);

        let zero = ManagerPool::new(0);
        zero.recycle(BddManager::new());
        assert_eq!(zero.stats().idle, 0, "zero-capacity pool never retains");
    }

    #[test]
    fn shared_arm_reuses_exact_config_matches_only() {
        let pool = ManagerPool::new(2);
        let cfg = SharedConfig::for_check(1, Some(1 << 12), 14);

        let mut m = pool.acquire_shared(cfg);
        let vars = m.new_vars(2);
        let a = m.var(vars[0]);
        let b = m.var(vars[1]);
        let f = m.xor(a, b);
        assert_eq!(m.node_count(f), 3);
        pool.recycle_shared(m);

        // Same sizing: served warm, and indistinguishable from fresh.
        let m2 = pool.acquire_shared(cfg);
        assert_eq!(m2.var_count(), 0, "recycled shared manager must start empty");
        assert_eq!(m2.config(), cfg);

        // Different sizing: must not reuse the idle manager.
        pool.recycle_shared(m2);
        let other = SharedConfig::for_check(2, Some(1 << 12), 14);
        let m3 = pool.acquire_shared(other);
        assert_eq!(m3.config(), other);

        let s = pool.stats();
        assert_eq!(s.hits, 1, "only the exact-config acquire may hit");
        assert_eq!(s.misses, 2);
        assert_eq!(s.idle, 1);
    }

    #[test]
    fn reset_clears_budget_and_telemetry() {
        let mut m = BddManager::new();
        let vars = m.new_vars(4);
        let a = m.var(vars[0]);
        let b = m.var(vars[1]);
        let f = m.and(a, b);
        m.protect(f);
        m.set_budget(Some(crate::Budget {
            max_live_nodes: Some(10),
            max_steps: Some(10),
            deadline: None,
        }));
        m.reset();
        assert_eq!(m.var_count(), 0);
        assert!(m.budget().is_none(), "reset must disarm the budget");
        let t = m.telemetry();
        assert_eq!((t.apply_steps, t.cache_hits, t.cache_misses), (0, 0, 0));
        assert_eq!(m.stats().peak_live_nodes, 0);
        // And the reset manager still works.
        let v = m.new_var();
        let x = m.var(v);
        let nx = m.not(x);
        assert_eq!(m.or(x, nx), m.constant(true));
        m.check_invariants();
    }
}
