//! Structural and model-counting queries on BDDs.

use crate::hasher::FxBuildHasher;
use crate::manager::{Bdd, BddManager, BddVar, FALSE, TERMINAL_LEVEL, TRUE};
use std::collections::{HashMap, HashSet};

/// A (possibly partial) satisfying assignment, indexed by variable.
///
/// `None` entries mean the variable is a don't-care for the chosen cube.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SatAssignment {
    values: Vec<Option<bool>>,
}

impl SatAssignment {
    /// Wraps a per-variable value vector (used by the shared engine's
    /// witness walks, which mirror the ones below).
    pub(crate) fn from_values(values: Vec<Option<bool>>) -> SatAssignment {
        SatAssignment { values }
    }

    /// The value chosen for `var`, if any.
    pub fn value(&self, var: BddVar) -> Option<bool> {
        self.values.get(var.0 as usize).copied().flatten()
    }

    /// A total assignment, with don't-cares filled in as `false`.
    pub fn to_total(&self, var_count: usize) -> Vec<bool> {
        (0..var_count).map(|i| self.values.get(i).copied().flatten().unwrap_or(false)).collect()
    }

    /// Iterates over the variables that were actually assigned.
    pub fn iter(&self) -> impl Iterator<Item = (BddVar, bool)> + '_ {
        self.values.iter().enumerate().filter_map(|(i, v)| v.map(|b| (BddVar(i as u32), b)))
    }
}

impl BddManager {
    /// The set of variables `f` depends on, in current level order.
    ///
    /// Complement tags never affect the support, so the walk runs over
    /// node indices.
    pub fn support(&self, f: Bdd) -> Vec<BddVar> {
        let mut levels = HashSet::with_hasher(FxBuildHasher::default());
        let mut visited = HashSet::with_hasher(FxBuildHasher::default());
        let mut stack = vec![f.node_index()];
        while let Some(idx) = stack.pop() {
            if !visited.insert(idx) {
                continue;
            }
            let n = &self.nodes[idx as usize];
            if n.level == TERMINAL_LEVEL {
                continue;
            }
            levels.insert(n.level);
            stack.push(n.lo >> 1);
            stack.push(n.hi >> 1);
        }
        let mut levels: Vec<u32> = levels.into_iter().collect();
        levels.sort_unstable();
        levels.into_iter().map(|l| BddVar(self.level_to_var[l as usize])).collect()
    }

    /// Number of nodes in the (shared) graph of `f`, including the terminal.
    pub fn node_count(&self, f: Bdd) -> usize {
        self.node_count_many(&[f])
    }

    /// Number of distinct nodes in the shared graph of all roots.
    ///
    /// This is the "number of BDD nodes needed to represent the
    /// implementation" metric of the paper's tables. With complement
    /// edges `f` and `¬f` contribute the same nodes, and there is a
    /// single shared terminal.
    pub fn node_count_many(&self, roots: &[Bdd]) -> usize {
        let mut visited = HashSet::with_hasher(FxBuildHasher::default());
        let mut stack: Vec<u32> = roots.iter().map(|r| r.node_index()).collect();
        while let Some(idx) = stack.pop() {
            if !visited.insert(idx) {
                continue;
            }
            let n = &self.nodes[idx as usize];
            if n.level != TERMINAL_LEVEL {
                stack.push(n.lo >> 1);
                stack.push(n.hi >> 1);
            }
        }
        visited.len()
    }

    /// Number of satisfying assignments of `f` over all declared variables.
    ///
    /// Counted in `f64`, which is exact below 2⁵³ and an approximation above.
    pub fn sat_count(&self, f: Bdd) -> f64 {
        let n = self.var_count() as u32;
        let mut memo: HashMap<u32, f64, FxBuildHasher> = HashMap::default();
        let fraction = self.sat_fraction(f.0, &mut memo);
        fraction * 2f64.powi(n as i32)
    }

    /// Fraction of assignments satisfying the function the tagged `edge`
    /// denotes. The memo is keyed on node indices (regular functions);
    /// a complement tag turns fraction `p` into `1 - p`.
    fn sat_fraction(&self, edge: u32, memo: &mut HashMap<u32, f64, FxBuildHasher>) -> f64 {
        let idx = edge >> 1;
        let regular = if idx == 0 {
            1.0
        } else if let Some(&v) = memo.get(&idx) {
            v
        } else {
            let n = &self.nodes[idx as usize];
            let lo = self.sat_fraction(n.lo, memo);
            let hi = self.sat_fraction(n.hi, memo);
            let v = 0.5 * lo + 0.5 * hi;
            memo.insert(idx, v);
            v
        };
        if edge & 1 == 1 {
            1.0 - regular
        } else {
            regular
        }
    }

    /// Returns a satisfying assignment if one exists.
    ///
    /// The returned assignment fixes exactly the variables on one true-path;
    /// unmentioned variables are don't-cares.
    pub fn any_sat(&self, f: Bdd) -> Option<SatAssignment> {
        if f.0 == FALSE {
            return None;
        }
        let mut values = vec![None; self.var_count()];
        let mut cur = f.0;
        while cur != TRUE {
            let n = &self.nodes[(cur >> 1) as usize];
            let var = self.level_to_var[n.level as usize] as usize;
            // Complement tags accumulate along the path.
            let (lo, hi) = (n.lo ^ (cur & 1), n.hi ^ (cur & 1));
            // Prefer the branch that can reach true; at least one can.
            if hi != FALSE {
                values[var] = Some(true);
                cur = hi;
            } else {
                values[var] = Some(false);
                cur = lo;
            }
        }
        Some(SatAssignment { values })
    }

    /// Returns an assignment falsifying `f`, if one exists.
    pub fn any_unsat(&self, f: Bdd) -> Option<SatAssignment> {
        if f.0 == TRUE {
            return None;
        }
        let mut values = vec![None; self.var_count()];
        let mut cur = f.0;
        while cur != FALSE {
            let n = &self.nodes[(cur >> 1) as usize];
            let var = self.level_to_var[n.level as usize] as usize;
            let (lo, hi) = (n.lo ^ (cur & 1), n.hi ^ (cur & 1));
            // In a reduced BDD every node other than the constant 1 has a
            // path to the 0 terminal, so any non-1 branch makes progress.
            if hi != TRUE {
                values[var] = Some(true);
                cur = hi;
            } else {
                values[var] = Some(false);
                cur = lo;
            }
        }
        Some(SatAssignment { values })
    }

    /// True iff `f` is the constant `true`.
    pub fn is_tautology(&self, f: Bdd) -> bool {
        f.0 == TRUE
    }

    /// True iff `f` is the constant `false`.
    pub fn is_contradiction(&self, f: Bdd) -> bool {
        f.0 == FALSE
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn support_lists_dependencies() {
        let mut m = BddManager::new();
        let vars = m.new_vars(4);
        let (a, c) = (m.var(vars[0]), m.var(vars[2]));
        let f = m.xor(a, c);
        assert_eq!(m.support(f), vec![vars[0], vars[2]]);
        assert_eq!(m.support(m.constant(true)), Vec::new());
        // ¬f has exactly the support of f.
        let nf = m.not(f);
        assert_eq!(m.support(nf), m.support(f));
    }

    #[test]
    fn sat_count_xor_chain() {
        let mut m = BddManager::new();
        let vars = m.new_vars(6);
        let lits: Vec<Bdd> = vars.iter().map(|&v| m.var(v)).collect();
        let parity = m.xor_many(&lits);
        // Exactly half of all 2^6 assignments have odd parity.
        assert_eq!(m.sat_count(parity), 32.0);
    }

    #[test]
    fn sat_count_complements_sum_to_space() {
        let mut m = BddManager::new();
        let vars = m.new_vars(5);
        let lits: Vec<Bdd> = vars.iter().map(|&v| m.var(v)).collect();
        let p = m.and(lits[0], lits[1]);
        let f = m.or(p, lits[3]);
        let nf = m.not(f);
        assert_eq!(m.sat_count(f) + m.sat_count(nf), 32.0);
    }

    #[test]
    fn any_sat_satisfies() {
        let mut m = BddManager::new();
        let vars = m.new_vars(5);
        let lits: Vec<Bdd> = vars.iter().map(|&v| m.var(v)).collect();
        let n3 = m.not(lits[3]);
        let f0 = m.and(lits[0], n3);
        let f = m.and(f0, lits[4]);
        let a = m.any_sat(f).expect("satisfiable");
        let total = a.to_total(5);
        assert!(m.eval(f, &total));
        assert_eq!(a.value(vars[0]), Some(true));
        assert_eq!(a.value(vars[3]), Some(false));
        assert!(m.any_sat(m.constant(false)).is_none());
        // Complemented root: a witness for ¬f must falsify f.
        let nf = m.not(f);
        let a = m.any_sat(nf).expect("satisfiable");
        assert!(!m.eval(f, &a.to_total(5)));
    }

    #[test]
    fn any_unsat_falsifies() {
        let mut m = BddManager::new();
        let vars = m.new_vars(3);
        let lits: Vec<Bdd> = vars.iter().map(|&v| m.var(v)).collect();
        let f = m.or_many(&lits);
        let a = m.any_unsat(f).expect("not a tautology");
        assert!(!m.eval(f, &a.to_total(3)));
        assert!(m.any_unsat(m.constant(true)).is_none());
    }

    #[test]
    fn node_count_shares_subgraphs() {
        let mut m = BddManager::new();
        let vars = m.new_vars(3);
        let lits: Vec<Bdd> = vars.iter().map(|&v| m.var(v)).collect();
        let f = m.and(lits[0], lits[1]);
        let g = m.and(lits[1], lits[2]);
        let shared = m.node_count_many(&[f, g]);
        let separate = m.node_count(f) + m.node_count(g);
        assert!(shared < separate);
        // A function and its complement share every node.
        let nf = m.not(f);
        assert_eq!(m.node_count_many(&[f, nf]), m.node_count(f));
    }
}
