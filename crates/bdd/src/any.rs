//! Engine-dispatching manager: the sequential [`BddManager`] or the
//! shared-memory [`SharedManager`] behind one concrete type.
//!
//! `core::symbolic` holds an [`AnyManager`] and picks the engine from
//! `CheckSettings::bdd_threads` at construction; every check then runs
//! unchanged against either engine. Plain enum dispatch (not a trait
//! object) keeps the operator calls static and the handles `Copy` — the
//! match costs one predictable branch per operation, noise next to an
//! apply recursion.
//!
//! Both engines build the same canonical complement-edge BDDs, so
//! verdicts, witnesses and serialised forests are bit-identical across
//! engines and thread counts. Engine-specific capabilities degrade
//! gracefully: reordering and garbage collection are no-ops on the shared
//! engine (its table is insert-only), and the flight recorder exists only
//! on the sequential one.

use crate::budget::{Budget, BudgetExceeded};
use crate::cube::Cube;
use crate::manager::{Bdd, BddManager, BddStats, BddVar, ReorderSettings};
use crate::shared::SharedManager;
use crate::SatAssignment;
use bbec_trace::{OpTelemetry, Progress, Tracer};

/// One of the two BDD engines, behind the operation surface the checks use.
// The size asymmetry (inline `BddManager` vs a handful of `Arc`s) is
// deliberate: one `AnyManager` exists per check, so the footprint is
// irrelevant, while boxing the classic engine would put a pointer hop on
// every operation of the default sequential hot path.
#[allow(clippy::large_enum_variant)]
#[derive(Debug)]
pub enum AnyManager {
    /// The single-owner engine: GC, reordering, flight recorder.
    Classic(BddManager),
    /// The shared-memory engine: concurrent table, work-stealing apply.
    Shared(SharedManager),
}

impl Default for AnyManager {
    fn default() -> Self {
        AnyManager::Classic(BddManager::new())
    }
}

/// Forwards a method to whichever engine is inside.
macro_rules! forward {
    ($self:ident, $m:ident => $body:expr) => {
        match $self {
            AnyManager::Classic($m) => $body,
            AnyManager::Shared($m) => $body,
        }
    };
}

impl AnyManager {
    /// The constant `true` or `false` function.
    pub fn constant(&self, value: bool) -> Bdd {
        forward!(self, m => m.constant(value))
    }

    /// Number of variables created so far.
    pub fn var_count(&self) -> usize {
        forward!(self, m => m.var_count())
    }

    /// Creates the next variable.
    pub fn new_var(&mut self) -> BddVar {
        forward!(self, m => m.new_var())
    }

    /// Creates `n` fresh variables.
    pub fn new_vars(&mut self, n: usize) -> Vec<BddVar> {
        forward!(self, m => m.new_vars(n))
    }

    /// The projection function of `var`.
    pub fn var(&self, var: BddVar) -> Bdd {
        forward!(self, m => m.var(var))
    }

    /// Negation (an O(1) complement-bit flip on both engines).
    pub fn not(&mut self, f: Bdd) -> Bdd {
        forward!(self, m => m.not(f))
    }

    /// Budgeted [`AnyManager::not`].
    pub fn try_not(&mut self, f: Bdd) -> Result<Bdd, BudgetExceeded> {
        forward!(self, m => m.try_not(f))
    }

    /// Conjunction.
    pub fn and(&mut self, f: Bdd, g: Bdd) -> Bdd {
        forward!(self, m => m.and(f, g))
    }

    /// Budgeted [`AnyManager::and`].
    pub fn try_and(&mut self, f: Bdd, g: Bdd) -> Result<Bdd, BudgetExceeded> {
        forward!(self, m => m.try_and(f, g))
    }

    /// Disjunction.
    pub fn or(&mut self, f: Bdd, g: Bdd) -> Bdd {
        forward!(self, m => m.or(f, g))
    }

    /// Budgeted [`AnyManager::or`].
    pub fn try_or(&mut self, f: Bdd, g: Bdd) -> Result<Bdd, BudgetExceeded> {
        forward!(self, m => m.try_or(f, g))
    }

    /// Exclusive or.
    pub fn xor(&mut self, f: Bdd, g: Bdd) -> Bdd {
        forward!(self, m => m.xor(f, g))
    }

    /// Budgeted [`AnyManager::xor`].
    pub fn try_xor(&mut self, f: Bdd, g: Bdd) -> Result<Bdd, BudgetExceeded> {
        forward!(self, m => m.try_xor(f, g))
    }

    /// Equivalence.
    pub fn xnor(&mut self, f: Bdd, g: Bdd) -> Bdd {
        forward!(self, m => m.xnor(f, g))
    }

    /// Budgeted [`AnyManager::xnor`].
    pub fn try_xnor(&mut self, f: Bdd, g: Bdd) -> Result<Bdd, BudgetExceeded> {
        forward!(self, m => m.try_xnor(f, g))
    }

    /// If-then-else.
    pub fn ite(&mut self, f: Bdd, g: Bdd, h: Bdd) -> Bdd {
        forward!(self, m => m.ite(f, g, h))
    }

    /// Budgeted [`AnyManager::ite`].
    pub fn try_ite(&mut self, f: Bdd, g: Bdd, h: Bdd) -> Result<Bdd, BudgetExceeded> {
        forward!(self, m => m.try_ite(f, g, h))
    }

    /// Conjunction of all `fs` (early exit on `false`).
    pub fn and_many(&mut self, fs: &[Bdd]) -> Bdd {
        forward!(self, m => m.and_many(fs))
    }

    /// Budgeted [`AnyManager::and_many`].
    pub fn try_and_many(&mut self, fs: &[Bdd]) -> Result<Bdd, BudgetExceeded> {
        forward!(self, m => m.try_and_many(fs))
    }

    /// Disjunction of all `fs` (early exit on `true`).
    pub fn or_many(&mut self, fs: &[Bdd]) -> Bdd {
        forward!(self, m => m.or_many(fs))
    }

    /// Budgeted [`AnyManager::or_many`].
    pub fn try_or_many(&mut self, fs: &[Bdd]) -> Result<Bdd, BudgetExceeded> {
        forward!(self, m => m.try_or_many(fs))
    }

    /// Parity of all `fs`.
    pub fn xor_many(&mut self, fs: &[Bdd]) -> Bdd {
        forward!(self, m => m.xor_many(fs))
    }

    /// Budgeted [`AnyManager::xor_many`].
    pub fn try_xor_many(&mut self, fs: &[Bdd]) -> Result<Bdd, BudgetExceeded> {
        forward!(self, m => m.try_xor_many(fs))
    }

    /// Existential quantification of the cube's variables out of `f`.
    pub fn exists(&mut self, f: Bdd, cube: Cube) -> Bdd {
        forward!(self, m => m.exists(f, cube))
    }

    /// Budgeted [`AnyManager::exists`].
    pub fn try_exists(&mut self, f: Bdd, cube: Cube) -> Result<Bdd, BudgetExceeded> {
        forward!(self, m => m.try_exists(f, cube))
    }

    /// Universal quantification.
    pub fn forall(&mut self, f: Bdd, cube: Cube) -> Bdd {
        forward!(self, m => m.forall(f, cube))
    }

    /// Budgeted [`AnyManager::forall`].
    pub fn try_forall(&mut self, f: Bdd, cube: Cube) -> Result<Bdd, BudgetExceeded> {
        forward!(self, m => m.try_forall(f, cube))
    }

    /// Fused `∃cube. f ∧ g`.
    pub fn and_exists(&mut self, f: Bdd, g: Bdd, cube: Cube) -> Bdd {
        forward!(self, m => m.and_exists(f, g, cube))
    }

    /// Budgeted [`AnyManager::and_exists`].
    pub fn try_and_exists(&mut self, f: Bdd, g: Bdd, cube: Cube) -> Result<Bdd, BudgetExceeded> {
        forward!(self, m => m.try_and_exists(f, g, cube))
    }

    /// Substitutes `g` for `var` in `f`.
    pub fn compose(&mut self, f: Bdd, var: BddVar, g: Bdd) -> Bdd {
        forward!(self, m => m.compose(f, var, g))
    }

    /// Budgeted [`AnyManager::compose`].
    pub fn try_compose(&mut self, f: Bdd, var: BddVar, g: Bdd) -> Result<Bdd, BudgetExceeded> {
        forward!(self, m => m.try_compose(f, var, g))
    }

    /// Builds the positive cube of `vars` ([`Cube::try_from_vars`] for
    /// whichever engine is inside).
    pub fn try_cube(&mut self, vars: &[BddVar]) -> Result<Cube, BudgetExceeded> {
        match self {
            AnyManager::Classic(m) => Cube::try_from_vars(m, vars),
            AnyManager::Shared(m) => m.try_cube(vars),
        }
    }

    /// Evaluates `f` under a total assignment indexed by variable.
    pub fn eval(&self, f: Bdd, assignment: &[bool]) -> bool {
        forward!(self, m => m.eval(f, assignment))
    }

    /// The set of variables `f` depends on, in current level order.
    pub fn support(&self, f: Bdd) -> Vec<BddVar> {
        forward!(self, m => m.support(f))
    }

    /// Number of nodes in the shared graph of `f`, including the terminal.
    pub fn node_count(&self, f: Bdd) -> usize {
        forward!(self, m => m.node_count(f))
    }

    /// Number of distinct nodes in the shared graph of all roots.
    pub fn node_count_many(&self, roots: &[Bdd]) -> usize {
        forward!(self, m => m.node_count_many(roots))
    }

    /// Returns an assignment satisfying `f`, if one exists.
    pub fn any_sat(&self, f: Bdd) -> Option<SatAssignment> {
        forward!(self, m => m.any_sat(f))
    }

    /// Returns an assignment falsifying `f`, if one exists.
    pub fn any_unsat(&self, f: Bdd) -> Option<SatAssignment> {
        forward!(self, m => m.any_unsat(f))
    }

    /// True iff `f` is the constant `true`.
    pub fn is_tautology(&self, f: Bdd) -> bool {
        forward!(self, m => m.is_tautology(f))
    }

    /// True iff `f` is the constant `false`.
    pub fn is_contradiction(&self, f: Bdd) -> bool {
        forward!(self, m => m.is_contradiction(f))
    }

    /// Serialises the shared graph of `roots`; equal functions serialise
    /// identically on both engines.
    pub fn write_forest(&self, roots: &[Bdd]) -> String {
        forward!(self, m => m.write_forest(roots))
    }

    /// Protects `f` across garbage collection (no-op on the shared engine).
    pub fn protect(&mut self, f: Bdd) -> Bdd {
        forward!(self, m => m.protect(f))
    }

    /// Releases a protection taken with [`AnyManager::protect`].
    pub fn release(&mut self, f: Bdd) {
        forward!(self, m => m.release(f))
    }

    /// Reclaims dead nodes; returns how many (always 0 on the shared
    /// engine, whose table is insert-only).
    pub fn collect_garbage(&mut self) -> usize {
        forward!(self, m => m.collect_garbage())
    }

    /// Considers a sifting pass (never on the shared engine).
    pub fn maybe_reorder(&mut self) -> bool {
        forward!(self, m => m.maybe_reorder())
    }

    /// Replaces the automatic-reordering settings (ignored by the shared
    /// engine).
    pub fn set_reorder_settings(&mut self, settings: ReorderSettings) {
        forward!(self, m => m.set_reorder_settings(settings))
    }

    /// Installs (or clears) the resource budget and opens a fresh
    /// step-accounting window.
    pub fn set_budget(&mut self, budget: Option<Budget>) {
        forward!(self, m => m.set_budget(budget))
    }

    /// The currently installed budget, if any.
    pub fn budget(&self) -> Option<Budget> {
        forward!(self, m => m.budget())
    }

    /// Usage statistics in [`BddStats`] units.
    pub fn stats(&self) -> BddStats {
        forward!(self, m => m.stats())
    }

    /// Resets the peak-live-nodes high-water mark (no-op on the shared
    /// engine, where peak equals live).
    pub fn reset_peak(&mut self) {
        forward!(self, m => m.reset_peak())
    }

    /// Cumulative operation counters for telemetry.
    pub fn telemetry(&self) -> OpTelemetry {
        forward!(self, m => m.telemetry())
    }

    /// Per-operation computed-table `(name, hits, misses)` rows.
    pub fn cache_stats_by_op(&self) -> Vec<(&'static str, u64, u64)> {
        forward!(self, m => m.cache_stats_by_op())
    }

    /// Installs the observability sink.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        forward!(self, m => m.set_tracer(tracer))
    }

    /// The currently installed observability sink.
    pub fn tracer(&self) -> &Tracer {
        forward!(self, m => m.tracer())
    }

    /// Installs the heartbeat engine.
    pub fn set_progress(&mut self, progress: Progress) {
        forward!(self, m => m.set_progress(progress))
    }

    /// Rebounds the computed table (fixed at construction on the shared
    /// engine, where this is a no-op).
    pub fn set_cache_capacity_bits(&mut self, bits: u32) {
        forward!(self, m => m.set_cache_capacity_bits(bits))
    }

    /// Dumps the flight recorder, where one exists (sequential engine only).
    pub fn dump_flight_recorder(&self, reason: &str) {
        forward!(self, m => m.dump_flight_recorder(reason))
    }

    /// Panics if a structural invariant is violated.
    pub fn check_invariants(&self) {
        forward!(self, m => m.check_invariants())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shared::SharedConfig;

    fn engines() -> [AnyManager; 2] {
        [
            AnyManager::Classic(BddManager::new()),
            AnyManager::Shared(SharedManager::new(SharedConfig::for_check(2, Some(1 << 14), 14))),
        ]
    }

    #[test]
    fn engines_agree_through_the_dispatch_surface() {
        let mut forests = Vec::new();
        for mut m in engines() {
            let vars = m.new_vars(6);
            let lits: Vec<Bdd> = vars.iter().map(|&v| m.var(v)).collect();
            let parity = m.xor_many(&lits);
            let conj = m.and_many(&lits[..4]);
            let pick = m.ite(parity, conj, lits[5]);
            let cube = m.try_cube(&vars[2..4]).unwrap();
            let quant = m.exists(pick, cube);
            let all = m.forall(pick, cube);
            assert!(m.eval(conj, &[true; 6]));
            // A parity chain over complement edges: one node per level
            // plus the terminal.
            assert_eq!(m.node_count(parity), 7);
            forests.push(m.write_forest(&[parity, conj, pick, quant, all]));
            m.check_invariants();
        }
        assert_eq!(forests[0], forests[1], "engines disagree through AnyManager");
    }

    #[test]
    fn default_is_classic() {
        assert!(matches!(AnyManager::default(), AnyManager::Classic(_)));
    }
}
