//! Stress tests for automatic reordering interleaved with operations —
//! the usage pattern of the symbolic simulator, where `maybe_reorder` runs
//! between gate evaluations while all live signals are protected.

use bbec_bdd::{Bdd, BddManager, BddVar, ReorderSettings};
use proptest::prelude::*;

const NVARS: usize = 10;

#[derive(Debug, Clone, Copy)]
enum Op {
    And(usize, usize),
    Or(usize, usize),
    Xor(usize, usize),
    Not(usize),
    ExistsVar(usize, usize),
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0..64usize, 0..64usize).prop_map(|(a, b)| Op::And(a, b)),
        (0..64usize, 0..64usize).prop_map(|(a, b)| Op::Or(a, b)),
        (0..64usize, 0..64usize).prop_map(|(a, b)| Op::Xor(a, b)),
        (0..64usize).prop_map(Op::Not),
        (0..64usize, 0..NVARS).prop_map(|(a, v)| Op::ExistsVar(a, v)),
    ]
}

/// Evaluates a node pool entry under an assignment, by construction log.
fn eval_log(log: &[(Op, usize)], leaves: usize, idx: usize, assign: &[bool]) -> bool {
    if idx < leaves {
        return assign[idx % NVARS];
    }
    let (op, _) = log[idx - leaves];
    match op {
        Op::And(a, b) => eval_log(log, leaves, a, assign) && eval_log(log, leaves, b, assign),
        Op::Or(a, b) => eval_log(log, leaves, a, assign) || eval_log(log, leaves, b, assign),
        Op::Xor(a, b) => eval_log(log, leaves, a, assign) ^ eval_log(log, leaves, b, assign),
        Op::Not(a) => !eval_log(log, leaves, a, assign),
        Op::ExistsVar(a, v) => {
            let mut lo = assign.to_vec();
            lo[v] = false;
            let mut hi = assign.to_vec();
            hi[v] = true;
            eval_log(log, leaves, a, &lo) || eval_log(log, leaves, a, &hi)
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// A random operation sequence with a hair-trigger reorder threshold:
    /// every protected pool entry must keep its meaning through dozens of
    /// garbage-collecting sifting passes.
    #[test]
    fn random_ops_survive_aggressive_reordering(ops in proptest::collection::vec(arb_op(), 1..40)) {
        let mut m = BddManager::with_reordering(ReorderSettings {
            threshold: 48, // absurdly low: reorder almost every step
            ..ReorderSettings::default()
        });
        let vars: Vec<BddVar> = m.new_vars(NVARS);
        let mut pool: Vec<Bdd> = vars.iter().map(|&v| m.var(v)).collect();
        let leaves = pool.len();
        let mut log: Vec<(Op, usize)> = Vec::new();
        for &op in &ops {
            let pick = |i: usize| -> usize { i % (leaves + log.len()) };
            let result = match op {
                Op::And(a, b) => {
                    let (x, y) = (pool[pick(a)], pool[pick(b)]);
                    m.and(x, y)
                }
                Op::Or(a, b) => {
                    let (x, y) = (pool[pick(a)], pool[pick(b)]);
                    m.or(x, y)
                }
                Op::Xor(a, b) => {
                    let (x, y) = (pool[pick(a)], pool[pick(b)]);
                    m.xor(x, y)
                }
                Op::Not(a) => {
                    let x = pool[pick(a)];
                    m.not(x)
                }
                Op::ExistsVar(a, v) => {
                    let x = pool[pick(a)];
                    m.exists_vars(x, &[vars[v]])
                }
            };
            m.protect(result);
            // Renormalise the op's operand indices for the evaluator log.
            let fixed = match op {
                Op::And(a, b) => Op::And(pick(a), pick(b)),
                Op::Or(a, b) => Op::Or(pick(a), pick(b)),
                Op::Xor(a, b) => Op::Xor(pick(a), pick(b)),
                Op::Not(a) => Op::Not(pick(a)),
                Op::ExistsVar(a, v) => Op::ExistsVar(pick(a), v),
            };
            log.push((fixed, 0));
            pool.push(result);
            m.maybe_reorder();
        }
        // Large runs must actually have exercised reordering; tiny shrunken
        // cases may legitimately stay under the threshold.
        if m.stats().live_nodes > 48 {
            prop_assert!(m.stats().reorderings > 0, "threshold must have triggered");
        }
        m.check_invariants();
        // Spot-check every pool entry on a deterministic assignment sample.
        for bits in (0..1u32 << NVARS).step_by(37) {
            let assign: Vec<bool> = (0..NVARS).map(|i| bits >> i & 1 == 1).collect();
            for (i, &f) in pool.iter().enumerate() {
                prop_assert_eq!(
                    m.eval(f, &assign),
                    eval_log(&log, leaves, i, &assign),
                    "pool entry {} diverged at {:b}",
                    i,
                    bits
                );
            }
        }
    }
}
