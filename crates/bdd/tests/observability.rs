//! Integration tests for the manager's observability hooks: progress
//! heartbeats from the amortised pulse, the flight recorder's operation
//! ring, and the postmortem dump on abort and panic paths.

use bbec_bdd::{Bdd, BddManager, Budget, BudgetExceeded};
use bbec_trace::{schema, AttrValue, Progress, TraceEvent, Tracer};
use std::time::Duration;

/// A step-hungry workload: `rounds` nested ITE chains over `n` fresh
/// variables each. One chain is cheap (hash-consing keeps the graphs
/// small), so the pulse-dependent tests loop enough rounds to push the
/// cumulative apply-step counter well past the 1024-step pulse period.
fn churn(m: &mut BddManager, n: usize, rounds: usize) -> Result<Bdd, BudgetExceeded> {
    let mut f = m.constant(false);
    for _ in 0..rounds {
        let vars = m.new_vars(n);
        let lits: Vec<Bdd> = vars.iter().map(|&v| m.var(v)).collect();
        let mut g = lits[0];
        for w in lits.windows(2) {
            let x = m.try_xor(w[0], w[1])?;
            g = m.try_ite(x, g, w[1])?;
        }
        f = m.try_xor(f, g)?;
    }
    Ok(f)
}

fn record_names(tracer: &Tracer) -> Vec<String> {
    tracer
        .finish()
        .events()
        .iter()
        .filter_map(|e| match e {
            TraceEvent::Record { name, .. } => Some(name.clone()),
            _ => None,
        })
        .collect()
}

#[test]
fn pulse_ticks_progress_with_live_nodes_and_budget_fraction() {
    let mut m = BddManager::new();
    // Zero-length interval: every pulse that reaches the gate emits.
    let p = Progress::new(Tracer::disabled(), Duration::from_micros(1));
    m.set_progress(p.clone());
    m.set_budget(Some(Budget::steps(1 << 20)));
    churn(&mut m, 16, 40).expect("budget is ample");
    assert!(p.total_steps() >= 1024, "pulse must report step deltas");
    assert!(p.heartbeats_emitted() >= 1, "at least one pulse past the gate");
    let frac = m.budget_fraction().expect("step budget armed");
    assert!(frac > 0.0 && frac <= 1.0, "fraction {frac} out of range");
    m.set_budget(None);
    assert_eq!(m.budget_fraction(), None, "no budget, no fraction");
}

#[test]
fn traced_manager_records_apply_windows_gc_and_reorder_ops() {
    let mut m = BddManager::new();
    m.set_tracer(Tracer::new());
    assert!(m.flight_recorder().enabled(), "tracer arms the recorder");
    let f = churn(&mut m, 16, 40).unwrap();
    m.protect(f);
    let kinds: Vec<&str> = m.flight_recorder().recent().iter().map(|o| o.kind).collect();
    assert!(kinds.contains(&"apply_window"), "no apply window in {kinds:?}");
    m.release(f);
    m.collect_garbage();
    m.reorder();
    let ops = m.flight_recorder().recent();
    assert!(ops.iter().any(|o| o.kind == "gc"), "no gc op recorded");
    assert!(ops.iter().any(|o| o.kind == "reorder"), "no reorder op recorded");
    // Disarming: a disabled tracer drops the ring.
    m.set_tracer(Tracer::disabled());
    assert!(!m.flight_recorder().enabled());
}

#[test]
fn budget_abort_then_dump_splices_a_valid_postmortem() {
    let mut m = BddManager::new();
    let tracer = Tracer::new();
    m.set_tracer(tracer.clone());
    m.set_budget(Some(Budget::steps(3000)));
    let err = churn(&mut m, 16, 200).expect_err("step budget must fire");
    assert!(matches!(err, BudgetExceeded::Steps { .. }));
    m.dump_flight_recorder(&format!("{err}"));
    let trace = tracer.finish();
    let names: Vec<&str> = trace
        .events()
        .iter()
        .filter_map(|e| match e {
            TraceEvent::Record { name, .. } => Some(name.as_str()),
            _ => None,
        })
        .collect();
    let dump_at = names.iter().position(|n| *n == "flight.dump").expect("dump header");
    assert!(names[dump_at + 1..].contains(&"flight.op"), "ops must follow the header");
    schema::validate_stream(&trace.to_jsonl()).expect("spliced stream validates");
    let dump_attrs = trace
        .events()
        .iter()
        .find_map(|e| match e {
            TraceEvent::Record { name, attrs, .. } if name == "flight.dump" => Some(attrs.clone()),
            _ => None,
        })
        .unwrap();
    assert!(
        dump_attrs
            .iter()
            .any(|(k, v)| k == "reason" && matches!(v, AttrValue::Str(s) if s.contains("step"))),
        "reason must carry the abort cause: {dump_attrs:?}"
    );
}

#[test]
fn panic_unwinding_through_a_traced_manager_dumps_the_ring() {
    let tracer = Tracer::new();
    let t = tracer.clone();
    let worker = std::thread::spawn(move || {
        let mut m = BddManager::new();
        m.set_tracer(t);
        churn(&mut m, 16, 40).unwrap();
        panic!("simulated check failure");
    });
    assert!(worker.join().is_err(), "the worker must have panicked");
    let names = record_names(&tracer);
    assert!(
        names.iter().any(|n| n == "flight.dump"),
        "Drop-on-panic must dump the ring: {names:?}"
    );
}

#[test]
fn orderly_drop_stays_silent() {
    let tracer = Tracer::new();
    {
        let mut m = BddManager::new();
        m.set_tracer(tracer.clone());
        churn(&mut m, 16, 40).unwrap();
    }
    let names = record_names(&tracer);
    assert!(
        !names.iter().any(|n| n == "flight.dump"),
        "a clean drop must not splice a postmortem: {names:?}"
    );
}
