//! Integration tests for the resource governor: budgets abort operations
//! as values, and the manager survives every abort intact.

use bbec_bdd::{Bdd, BddManager, BddVar, Budget, BudgetExceeded};
use std::time::{Duration, Instant};

/// A function family that needs many nodes: the "hidden weighted bit"
/// style nested ITE chain over `n` variables.
fn build_deep(m: &mut BddManager, vars: &[BddVar]) -> Bdd {
    let lits: Vec<Bdd> = vars.iter().map(|&v| m.var(v)).collect();
    let mut f = lits[0];
    for w in lits.windows(2) {
        let x = m.xor(w[0], w[1]);
        f = m.ite(x, f, w[1]);
    }
    f
}

#[test]
fn step_budget_aborts_and_reports_limit() {
    let mut m = BddManager::new();
    let vars = m.new_vars(24);
    m.set_budget(Some(Budget::steps(5)));
    let lits: Vec<Bdd> = vars.iter().map(|&v| m.var(v)).collect();
    let mut acc = lits[0];
    let mut err = None;
    for &l in &lits[1..] {
        match m.try_xor(acc, l) {
            Ok(r) => acc = r,
            Err(e) => {
                err = Some(e);
                break;
            }
        }
    }
    assert_eq!(err, Some(BudgetExceeded::Steps { limit: 5 }));
}

#[test]
fn node_budget_aborts_but_infallible_wrappers_ignore_it() {
    let mut m = BddManager::new();
    let vars = m.new_vars(16);
    let lits: Vec<Bdd> = vars.iter().map(|&v| m.var(v)).collect();
    m.set_budget(Some(Budget::nodes(20)));
    // Parity over 16 variables needs fewer than 20 nodes only for a prefix;
    // the budgeted op must abort eventually.
    let mut acc = lits[0];
    let mut aborted = false;
    for &l in &lits[1..] {
        match m.try_xor(acc, l) {
            Ok(r) => acc = r,
            Err(BudgetExceeded::Nodes { limit }) => {
                assert_eq!(limit, 20);
                aborted = true;
                break;
            }
            Err(e) => panic!("wrong abort kind: {e}"),
        }
    }
    assert!(aborted, "node budget never fired");
    // The classic names run with the budget ignored and still succeed.
    let full = m.xor_many(&lits);
    for bits in [0u32, 1, 0b1011, 0xFFFF] {
        let assign: Vec<bool> = (0..16).map(|i| bits >> i & 1 == 1).collect();
        let expect = (bits.count_ones() & 1) == 1;
        assert_eq!(m.eval(full, &assign), expect);
    }
}

#[test]
fn deadline_budget_aborts_long_running_work() {
    let mut m = BddManager::new();
    let vars = m.new_vars(64);
    // A deadline already in the past: the first 1024-step block aborts.
    m.set_budget(Some(Budget {
        deadline: Some(Instant::now() - Duration::from_millis(1)),
        ..Budget::default()
    }));
    let lits: Vec<Bdd> = vars.iter().map(|&v| m.var(v)).collect();
    let mut acc = lits[0];
    let mut err = None;
    for w in lits.windows(2) {
        let x = match m.try_xor(w[0], w[1]) {
            Ok(x) => x,
            Err(e) => {
                err = Some(e);
                break;
            }
        };
        match m.try_ite(x, acc, w[1]) {
            Ok(r) => acc = r,
            Err(e) => {
                err = Some(e);
                break;
            }
        }
    }
    assert_eq!(err, Some(BudgetExceeded::Deadline));
}

/// The manager-survival contract (ISSUE satellite): spec BDDs built and
/// protected before a budget abort keep evaluating correctly, the dropped
/// intermediates show up as dead nodes, and a GC reclaims them.
#[test]
fn manager_survives_mid_ite_budget_exhaustion() {
    let mut m = BddManager::new();
    let vars = m.new_vars(20);
    let lits: Vec<Bdd> = vars.iter().map(|&v| m.var(v)).collect();

    // "Spec" BDDs, protected like CheckSession's output functions.
    let parity = m.xor_many(&lits[..8]);
    let majority3 = {
        let ab = m.and(lits[0], lits[1]);
        let ac = m.and(lits[0], lits[2]);
        let bc = m.and(lits[1], lits[2]);
        let or1 = m.or(ab, ac);
        m.or(or1, bc)
    };
    m.protect(parity);
    m.protect(majority3);
    m.collect_garbage();
    let live_before = m.stats().live_nodes;

    // Exhaust a tiny step budget mid-ITE over a deep function.
    m.set_budget(Some(Budget::steps(40)));
    let deep = m.try_ite(parity, majority3, lits[9]).and_then(|seed| {
        let mut f = seed;
        for w in lits.windows(3) {
            let x = m.try_xor(w[0], w[1])?;
            let y = m.try_ite(x, f, w[2])?;
            f = m.try_ite(y, w[1], f)?;
        }
        Ok(f)
    });
    assert!(matches!(deep, Err(BudgetExceeded::Steps { limit: 40 })));

    // Intermediates of the aborted computation are unprotected: live count
    // may have grown, but GC brings it back to exactly the spec footprint.
    let stats_after_abort = m.stats();
    assert!(stats_after_abort.live_nodes >= live_before, "abort must not free protected nodes");
    m.set_budget(None);
    m.collect_garbage();
    assert_eq!(
        m.stats().live_nodes,
        live_before,
        "GC after abort must reclaim exactly the dropped intermediates"
    );

    // The protected spec BDDs still evaluate correctly...
    for bits in 0..256u32 {
        let assign: Vec<bool> = (0..20).map(|i| bits >> i & 1 == 1).collect();
        let expect_parity = ((bits & 0xFF).count_ones() & 1) == 1;
        let a = assign[0] as u8 + assign[1] as u8 + assign[2] as u8;
        assert_eq!(m.eval(parity, &assign), expect_parity);
        assert_eq!(m.eval(majority3, &assign), a >= 2);
    }

    // ...and the manager is fully reusable for new work.
    let fresh = build_deep(&mut m, &vars[..10]);
    assert!(!fresh.is_const() || m.node_count(fresh) > 0);
    let check = m.and(parity, majority3);
    let lhs = m.and(check, fresh);
    let rhs = m.and(fresh, check);
    assert_eq!(lhs, rhs);
}

#[test]
fn set_budget_resets_the_step_window() {
    let mut m = BddManager::new();
    let vars = m.new_vars(12);
    let lits: Vec<Bdd> = vars.iter().map(|&v| m.var(v)).collect();

    m.set_budget(Some(Budget::steps(50)));
    let mut acc = lits[0];
    let mut first_err = None;
    for w in lits.windows(2) {
        let x = match m.try_xor(w[0], w[1]) {
            Ok(x) => x,
            Err(e) => {
                first_err = Some(e);
                break;
            }
        };
        match m.try_ite(x, acc, w[1]) {
            Ok(r) => acc = r,
            Err(e) => {
                first_err = Some(e);
                break;
            }
        }
    }
    assert!(first_err.is_some(), "budget never fired");

    // Re-arming the same budget opens a fresh window: the small op that
    // follows fits comfortably even though cumulative steps exceed 50.
    m.set_budget(Some(Budget::steps(50)));
    let ok = m.try_and(lits[0], lits[1]);
    assert!(ok.is_ok(), "fresh window must allow small operations");
}

#[test]
fn telemetry_accumulates_across_operations() {
    let mut m = BddManager::new();
    let vars = m.new_vars(10);
    let lits: Vec<Bdd> = vars.iter().map(|&v| m.var(v)).collect();
    let before = m.telemetry();
    let f = m.xor_many(&lits);
    let _ = m.and_many(&lits);
    let delta = m.telemetry().since(&before);
    assert!(delta.apply_steps > 0, "apply steps must be charged");
    assert!(delta.cache_misses > 0, "fresh work must miss the cache");
    // Recomputing an identical result is answered from the cache.
    let before_hit = m.telemetry();
    let g = m.xor_many(&lits);
    assert_eq!(f, g);
    let delta_hit = m.telemetry().since(&before_hit);
    assert!(delta_hit.cache_hits > 0, "recomputation must hit the cache");
    // GC passes are counted.
    let before_gc = m.telemetry();
    m.collect_garbage();
    assert_eq!(m.telemetry().since(&before_gc).gc_passes, 1);
}
