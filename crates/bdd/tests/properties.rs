//! Property-based tests: random Boolean expressions are built as BDDs and
//! compared against direct evaluation, across garbage collection and
//! reordering.

use bbec_bdd::{BddManager, BddVar, Cube};
use proptest::prelude::*;

/// A tiny expression AST mirrored into both a BDD and a direct evaluator.
#[derive(Debug, Clone)]
enum Expr {
    Var(usize),
    Not(Box<Expr>),
    And(Box<Expr>, Box<Expr>),
    Or(Box<Expr>, Box<Expr>),
    Xor(Box<Expr>, Box<Expr>),
    Ite(Box<Expr>, Box<Expr>, Box<Expr>),
}

impl Expr {
    fn eval(&self, assign: &[bool]) -> bool {
        match self {
            Expr::Var(i) => assign[*i],
            Expr::Not(a) => !a.eval(assign),
            Expr::And(a, b) => a.eval(assign) && b.eval(assign),
            Expr::Or(a, b) => a.eval(assign) || b.eval(assign),
            Expr::Xor(a, b) => a.eval(assign) ^ b.eval(assign),
            Expr::Ite(c, t, e) => {
                if c.eval(assign) {
                    t.eval(assign)
                } else {
                    e.eval(assign)
                }
            }
        }
    }

    fn build(&self, m: &mut BddManager, vars: &[BddVar]) -> bbec_bdd::Bdd {
        match self {
            Expr::Var(i) => m.var(vars[*i]),
            Expr::Not(a) => {
                let x = a.build(m, vars);
                m.not(x)
            }
            Expr::And(a, b) => {
                let (x, y) = (a.build(m, vars), b.build(m, vars));
                m.and(x, y)
            }
            Expr::Or(a, b) => {
                let (x, y) = (a.build(m, vars), b.build(m, vars));
                m.or(x, y)
            }
            Expr::Xor(a, b) => {
                let (x, y) = (a.build(m, vars), b.build(m, vars));
                m.xor(x, y)
            }
            Expr::Ite(c, t, e) => {
                let (x, y, z) = (c.build(m, vars), t.build(m, vars), e.build(m, vars));
                m.ite(x, y, z)
            }
        }
    }
}

const NVARS: usize = 6;

fn arb_expr() -> impl Strategy<Value = Expr> {
    let leaf = (0..NVARS).prop_map(Expr::Var);
    leaf.prop_recursive(5, 48, 3, |inner| {
        prop_oneof![
            inner.clone().prop_map(|a| Expr::Not(Box::new(a))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::And(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::Or(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::Xor(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone(), inner).prop_map(|(a, b, c)| Expr::Ite(
                Box::new(a),
                Box::new(b),
                Box::new(c)
            )),
        ]
    })
}

fn all_assignments() -> impl Iterator<Item = Vec<bool>> {
    (0..1u32 << NVARS).map(|bits| (0..NVARS).map(|i| bits >> i & 1 == 1).collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn bdd_matches_direct_evaluation(e in arb_expr()) {
        let mut m = BddManager::new();
        let vars = m.new_vars(NVARS);
        let f = e.build(&mut m, &vars);
        for assign in all_assignments() {
            prop_assert_eq!(m.eval(f, &assign), e.eval(&assign));
        }
        m.check_invariants();
    }

    #[test]
    fn semantics_survive_gc_and_reorder(e in arb_expr()) {
        let mut m = BddManager::new();
        let vars = m.new_vars(NVARS);
        let f = e.build(&mut m, &vars);
        m.protect(f);
        let before: Vec<bool> = all_assignments().map(|a| m.eval(f, &a)).collect();
        m.collect_garbage();
        m.check_invariants();
        let after_gc: Vec<bool> = all_assignments().map(|a| m.eval(f, &a)).collect();
        prop_assert_eq!(&before, &after_gc);
        m.reorder();
        m.check_invariants();
        let after_reorder: Vec<bool> = all_assignments().map(|a| m.eval(f, &a)).collect();
        prop_assert_eq!(&before, &after_reorder);
    }

    #[test]
    fn quantification_matches_expansion(e in arb_expr(), which in 0..NVARS) {
        let mut m = BddManager::new();
        let vars = m.new_vars(NVARS);
        let f = e.build(&mut m, &vars);
        let v = vars[which];
        let f0 = m.restrict(f, v, false);
        let f1 = m.restrict(f, v, true);
        let ex = m.exists_vars(f, &[v]);
        let expect_ex = m.or(f0, f1);
        prop_assert_eq!(ex, expect_ex);
        let fa = m.forall_vars(f, &[v]);
        let expect_fa = m.and(f0, f1);
        prop_assert_eq!(fa, expect_fa);
    }

    #[test]
    fn compose_matches_shannon(e in arb_expr(), g in arb_expr(), which in 0..NVARS) {
        let mut m = BddManager::new();
        let vars = m.new_vars(NVARS);
        let f = e.build(&mut m, &vars);
        let rep = g.build(&mut m, &vars);
        let v = vars[which];
        let composed = m.compose(f, v, rep);
        // compose(f, v, g) == ite(g, f|v=1, f|v=0)
        let f1 = m.restrict(f, v, true);
        let f0 = m.restrict(f, v, false);
        let expect = m.ite(rep, f1, f0);
        prop_assert_eq!(composed, expect);
    }

    #[test]
    fn constrain_agrees_with_f_on_care_set(e in arb_expr(), c in arb_expr()) {
        let mut m = BddManager::new();
        let vars = m.new_vars(NVARS);
        let f = e.build(&mut m, &vars);
        let care = c.build(&mut m, &vars);
        if care == m.constant(false) {
            return Ok(()); // empty care set is rejected by contract
        }
        let g = m.constrain(f, care);
        let lhs = m.and(g, care);
        let rhs = m.and(f, care);
        prop_assert_eq!(lhs, rhs);
    }

    #[test]
    fn sat_count_matches_truth_table(e in arb_expr()) {
        let mut m = BddManager::new();
        let vars = m.new_vars(NVARS);
        let f = e.build(&mut m, &vars);
        let expect = all_assignments().filter(|a| e.eval(a)).count();
        prop_assert_eq!(m.sat_count(f), expect as f64);
    }

    #[test]
    fn any_sat_agrees_with_satisfiability(e in arb_expr()) {
        let mut m = BddManager::new();
        let vars = m.new_vars(NVARS);
        let f = e.build(&mut m, &vars);
        match m.any_sat(f) {
            None => prop_assert!(all_assignments().all(|a| !e.eval(&a))),
            Some(witness) => prop_assert!(e.eval(&witness.to_total(NVARS))),
        }
    }

    #[test]
    fn set_var_order_preserves_function(e in arb_expr(), seed in 0u64..1000) {
        let mut m = BddManager::new();
        let vars = m.new_vars(NVARS);
        let f = e.build(&mut m, &vars);
        m.protect(f);
        let before: Vec<bool> = all_assignments().map(|a| m.eval(f, &a)).collect();
        // A deterministic pseudo-random permutation from the seed.
        let mut order: Vec<_> = vars.clone();
        let mut s = seed.wrapping_mul(0x9e3779b97f4a7c15).wrapping_add(1);
        for i in (1..order.len()).rev() {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            order.swap(i, (s as usize) % (i + 1));
        }
        m.set_var_order(&order);
        m.check_invariants();
        let after: Vec<bool> = all_assignments().map(|a| m.eval(f, &a)).collect();
        prop_assert_eq!(before, after);
    }
}

#[test]
fn quantify_multiple_vars_via_cube() {
    let mut m = BddManager::new();
    let vars = m.new_vars(4);
    let lits: Vec<_> = vars.iter().map(|&v| m.var(v)).collect();
    // f = (x0 ∧ x1) ∨ (x2 ∧ x3): ∃x1,x3. f = x0 ∨ x2.
    let p = m.and(lits[0], lits[1]);
    let q = m.and(lits[2], lits[3]);
    let f = m.or(p, q);
    let cube = Cube::from_vars(&mut m, &[vars[1], vars[3]]);
    let ex = m.exists(f, cube);
    let expect = m.or(lits[0], lits[2]);
    assert_eq!(ex, expect);
}
