//! Dev probe: search for a two-box instance where equation (1) is strictly
//! weaker than Theorem 2.1 (reports "no error" although no completion
//! exists). Used once to pin a witness into `samples`/tests.

use bbec_core::{checks, CheckSettings, PartialCircuit, Verdict};
use bbec_netlist::{generators, mutate::Mutation};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    let s = CheckSettings { dynamic_reordering: false, ..Default::default() };
    let mut rng = StdRng::seed_from_u64(1);
    let mut tried = 0;
    for seed in 0..4000u64 {
        let c = generators::random_logic("gap", 4, 14, 2, seed);
        let roots: Vec<_> = c.outputs().iter().map(|&(_, s)| s).collect();
        let cone = c.fanin_cone_gates(&roots);
        if cone.len() < 2 {
            continue;
        }
        let Some(m) = Mutation::random(&c, &cone, &mut rng) else { continue };
        let Ok(faulty) = m.apply(&c) else { continue };
        for _ in 0..4 {
            let g1 = cone[rng.random_range(0..cone.len())];
            let g2 = cone[rng.random_range(0..cone.len())];
            if g1 == g2 {
                continue;
            }
            let Ok(p) = PartialCircuit::black_box_partition(&faulty, &[vec![g1], vec![g2]]) else {
                continue;
            };
            let Ok(exact) = checks::exact_decomposition(&c, &p, &s, 16) else { continue };
            tried += 1;
            let ie = checks::input_exact(&c, &p, &s).unwrap().verdict;
            if ie == Verdict::NoErrorFound && !exact.is_completable() {
                println!(
                    "GAP FOUND: seed {seed}, mutation {}, boxes [{g1}],[{g2}]",
                    m.describe(&c)
                );
                return;
            }
        }
    }
    println!("no gap found in {tried} instances");
}
