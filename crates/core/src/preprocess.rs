//! Structural preprocessing: sweep spec and implementation before the
//! ladder runs.
//!
//! The [`preprocess`] stage applies [`bbec_netlist::strash`] sweeping to
//! both sides of a check: constants propagate, structurally identical
//! internal points merge, and dead logic disappears — so every rung,
//! shard and engine downstream operates on smaller circuits. Black boxes
//! are opaque barriers: box output nets stay undriven leaves and every
//! box pin is protected, then remapped onto the swept host, so the
//! rebuilt [`PartialCircuit`] has the same boxes wired to equivalent
//! nets.
//!
//! The sweep preserves the *ternary* (0,1,X) function of every kept
//! point over primary inputs and box outputs — see the `strash` module
//! docs for which rewrites qualify — which makes it verdict-invariant
//! for the whole ladder: the Kleene-semantics rungs (`r.p.`, `0,1,X`,
//! `loc.`) and the quantification rungs (`oe`, `ie`) all compute the
//! same answers on the swept pair. The differential oracle enforces this
//! with a dedicated sweep-on/off engine pair.

use crate::partial::{BlackBox, PartialCircuit};
use crate::report::{CheckError, CheckSettings};
use bbec_netlist::strash::{self, SweepStats};
use bbec_netlist::Circuit;

/// Reduction statistics of one preprocessing run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PreprocessReport {
    /// Sweep statistics of the specification.
    pub spec: SweepStats,
    /// Sweep statistics of the partial implementation's host circuit.
    pub imp: SweepStats,
    /// Internal points the swept spec and implementation share under
    /// joint structural hashing (inputs unified by position). A trace
    /// statistic: the engines still consume the two circuits separately.
    pub shared_points: usize,
}

/// A preprocessed check instance: the swept pair plus statistics.
#[derive(Debug, Clone)]
pub struct Preprocessed {
    /// Swept specification (same input/output interface).
    pub spec: Circuit,
    /// Swept partial implementation (same boxes, remapped pins).
    pub partial: PartialCircuit,
    /// What the sweep accomplished.
    pub report: PreprocessReport,
}

/// Sweeps a spec/implementation pair ahead of the ladder.
///
/// Emits a `core.preprocess` span with the merged-point counts on the
/// settings' tracer.
///
/// # Errors
///
/// [`CheckError::InvalidPartial`] if the swept host no longer satisfies
/// the partial-circuit invariants (cannot happen for pairs accepted by
/// [`PartialCircuit::new`], since protected pins are remapped totally).
pub fn preprocess(
    spec: &Circuit,
    partial: &PartialCircuit,
    settings: &CheckSettings,
) -> Result<Preprocessed, CheckError> {
    let span = settings.tracer.span("core.preprocess");
    let spec_swept = strash::sweep(spec);
    let (swept_partial, imp_stats) = sweep_partial(partial)?;
    let shared_points = strash::shared_point_count(&spec_swept.circuit, swept_partial.circuit());

    let report = PreprocessReport { spec: spec_swept.stats, imp: imp_stats, shared_points };
    span.set_attr("spec_gates_before", report.spec.gates_before);
    span.set_attr("spec_gates_after", report.spec.gates_after);
    span.set_attr("spec_merged_points", report.spec.merged_points);
    span.set_attr("impl_gates_before", report.imp.gates_before);
    span.set_attr("impl_gates_after", report.imp.gates_after);
    span.set_attr("impl_merged_points", report.imp.merged_points);
    span.set_attr("const_folded", report.spec.const_folded + report.imp.const_folded);
    span.set_attr("shared_points", report.shared_points);
    Ok(Preprocessed { spec: spec_swept.circuit, partial: swept_partial, report })
}

/// Sweeps only the partial implementation, protecting and remapping
/// every box pin. Used by [`crate::CheckSession`], whose specification
/// is swept once at construction.
///
/// # Errors
///
/// As [`preprocess`].
pub fn sweep_partial(partial: &PartialCircuit) -> Result<(PartialCircuit, SweepStats), CheckError> {
    let host = partial.circuit();
    let mut protect: Vec<bbec_netlist::SignalId> = Vec::new();
    for b in partial.boxes() {
        protect.extend(b.inputs.iter().copied());
        protect.extend(b.outputs.iter().copied());
    }
    let swept = strash::sweep_protected(host, &protect);
    let boxes: Vec<BlackBox> = partial
        .boxes()
        .iter()
        .map(|b| {
            let map = |s: &bbec_netlist::SignalId| {
                swept.signal_map[s.index()].expect("protected pin materialized")
            };
            BlackBox {
                name: b.name.clone(),
                inputs: b.inputs.iter().map(map).collect(),
                outputs: b.outputs.iter().map(map).collect(),
            }
        })
        .collect();
    Ok((PartialCircuit::new(swept.circuit, boxes)?, swept.stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checks;
    use crate::report::{Method, Verdict};
    use bbec_netlist::generators;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn settings() -> CheckSettings {
        CheckSettings { dynamic_reordering: false, ..CheckSettings::default() }
    }

    #[test]
    fn preprocess_keeps_boxes_and_interfaces() {
        let spec = generators::ripple_carry_adder(4);
        let mut rng = StdRng::seed_from_u64(11);
        let partial = PartialCircuit::random_black_boxes(&spec, 0.2, 2, &mut rng).unwrap();
        let pre = preprocess(&spec, &partial, &settings()).unwrap();
        assert_eq!(pre.spec.inputs().len(), spec.inputs().len());
        assert_eq!(pre.spec.outputs().len(), spec.outputs().len());
        assert_eq!(pre.partial.boxes().len(), partial.boxes().len());
        for (a, b) in partial.boxes().iter().zip(pre.partial.boxes()) {
            assert_eq!(a.inputs.len(), b.inputs.len());
            assert_eq!(a.outputs.len(), b.outputs.len());
        }
    }

    #[test]
    fn preprocess_preserves_verdicts_across_the_ladder() {
        let spec = generators::magnitude_comparator(4);
        let mut rng = StdRng::seed_from_u64(23);
        for round in 0..6 {
            let Ok(partial) = PartialCircuit::random_black_boxes(&spec, 0.2, 2, &mut rng) else {
                continue;
            };
            let pre = preprocess(&spec, &partial, &settings()).unwrap();
            for method in
                [Method::Symbolic01X, Method::Local, Method::OutputExact, Method::InputExact]
            {
                let run = |s: &Circuit, p: &PartialCircuit| -> Verdict {
                    let out = match method {
                        Method::Symbolic01X => checks::symbolic_01x(s, p, &settings()),
                        Method::Local => checks::local_check(s, p, &settings()),
                        Method::OutputExact => checks::output_exact(s, p, &settings()),
                        Method::InputExact => checks::input_exact(s, p, &settings()),
                        _ => unreachable!(),
                    };
                    out.unwrap().verdict
                };
                assert_eq!(
                    run(&spec, &partial),
                    run(&pre.spec, &pre.partial),
                    "{method} diverged on round {round}"
                );
            }
        }
    }

    #[test]
    fn preprocess_records_reduction() {
        // A circuit with duplicate logic: the sweep must merge something.
        let mut b = Circuit::builder("dup");
        let x = b.input("x");
        let y = b.input("y");
        let a1 = b.and2(x, y);
        let a2 = b.and2(x, y);
        let bb = b.signal("bb_out");
        let f = b.or2(a1, bb);
        let g = b.or2(a2, bb);
        b.output("f", f);
        b.output("g", g);
        let host = b.build_allow_undriven().unwrap();
        let partial = PartialCircuit::new(
            host,
            vec![BlackBox { name: "B".into(), inputs: vec![x], outputs: vec![bb] }],
        )
        .unwrap();

        let mut sb = Circuit::builder("spec");
        let x = sb.input("x");
        let y = sb.input("y");
        let a = sb.and2(x, y);
        let f = sb.or2(a, x);
        let g = sb.or2(a, x);
        sb.output("f", f);
        sb.output("g", g);
        let spec = sb.build().unwrap();

        let pre = preprocess(&spec, &partial, &settings()).unwrap();
        assert!(pre.report.imp.merged_points >= 1, "{:?}", pre.report);
        assert!(pre.report.spec.merged_points >= 1, "{:?}", pre.report);
        assert!(pre.report.shared_points >= 1, "and(x,y) is shared: {:?}", pre.report);
    }
}
