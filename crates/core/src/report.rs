//! Check outcomes, resource accounting and configuration.

use std::error::Error;
use std::fmt;
use std::time::Duration;

/// The checking methods of the paper (plus the SAT future-work arm).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Method {
    /// Non-symbolic 0,1,X simulation with random patterns (column `r.p.`).
    RandomPatterns,
    /// Symbolic 0,1,X simulation (Section 2.1).
    Symbolic01X,
    /// Symbolic Z_i simulation with the local check (Lemma 2.1).
    Local,
    /// The output-exact check (Lemma 2.2).
    OutputExact,
    /// The input-exact check (equation (1)).
    InputExact,
    /// Brute-force decomposition check (Theorem 2.1, tiny boxes only).
    ExactDecomposition,
    /// SAT-based dual-rail 0,1,X check.
    SatDualRail,
    /// SAT/CEGAR-based output-exact check.
    SatOutputExact,
}

impl Method {
    /// Short column label as used in the paper's tables.
    pub fn label(self) -> &'static str {
        match self {
            Method::RandomPatterns => "r.p.",
            Method::Symbolic01X => "0,1,X",
            Method::Local => "loc.",
            Method::OutputExact => "oe",
            Method::InputExact => "ie",
            Method::ExactDecomposition => "exact",
            Method::SatDualRail => "sat-01x",
            Method::SatOutputExact => "sat-oe",
        }
    }
}

impl fmt::Display for Method {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// The answer of a check.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// The partial implementation cannot be extended to a correct design.
    ErrorFound,
    /// No error found at this check's accuracy (only the input-exact check
    /// with a single black box turns this into "definitely completable").
    NoErrorFound,
}

/// A distinguishing primary-input assignment, when a check produces one.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Counterexample {
    /// Primary input values in declaration order.
    pub inputs: Vec<bool>,
    /// The output observed to be wrong, if attributable to a single output.
    pub output: Option<usize>,
}

/// Resource usage of one check, in the units of the paper's tables, plus
/// the resource governor's per-check operation telemetry.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ResourceStats {
    /// BDD nodes representing the partial implementation (columns 10–13).
    pub impl_nodes: usize,
    /// Additional peak BDD nodes during the check itself (columns 14–16).
    pub peak_check_nodes: usize,
    /// Wall-clock time of the check.
    pub duration: Duration,
    /// Cache-miss recursion steps of the BDD operator core.
    pub apply_steps: u64,
    /// Computed-table hits during the check.
    pub cache_hits: u64,
    /// Computed-table misses during the check.
    pub cache_misses: u64,
    /// Garbage-collection passes during the check.
    pub gc_passes: u64,
    /// Dynamic-reordering passes during the check.
    pub reorder_passes: u64,
    /// Simulation patterns evaluated (random-pattern rung: lanes swept by
    /// the bit-parallel engine, counted up to the erring lane on an error).
    pub patterns: u64,
}

impl ResourceStats {
    /// Copies the governor's per-window counters into this record.
    pub fn absorb_telemetry(&mut self, t: &bbec_bdd::OpTelemetry) {
        self.apply_steps = t.apply_steps;
        self.cache_hits = t.cache_hits;
        self.cache_misses = t.cache_misses;
        self.gc_passes = t.gc_passes;
        self.reorder_passes = t.reorder_passes;
    }
}

/// The complete result of one check invocation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckOutcome {
    pub method: Method,
    pub verdict: Verdict,
    /// A witness input vector, when the method can produce one.
    pub counterexample: Option<Counterexample>,
    pub stats: ResourceStats,
}

impl CheckOutcome {
    /// Whether an error was found.
    pub fn is_error(&self) -> bool {
        self.verdict == Verdict::ErrorFound
    }
}

/// Tunables shared by the BDD-based checks.
#[derive(Debug, Clone)]
pub struct CheckSettings {
    /// Enable dynamic (sifting) reordering, as the paper's experiments do.
    pub dynamic_reordering: bool,
    /// Live-node threshold that first triggers automatic reordering.
    pub reorder_threshold: usize,
    /// Patterns for [`crate::checks::random_patterns`] (paper: 5000).
    pub random_patterns: usize,
    /// Seed for the random-pattern check.
    pub seed: u64,
    /// Abort a BDD-based check with [`CheckError::BudgetExceeded`] once its
    /// manager holds this many live nodes (`None` = unbounded).
    pub node_limit: Option<usize>,
    /// Abort a BDD-based check once it has charged this many apply steps
    /// (`None` = unbounded). Steps are a machine-independent cost unit.
    pub step_limit: Option<u64>,
    /// Abort a BDD-based check after this much wall-clock time
    /// (`None` = unbounded). Each check (ladder rung) gets a fresh window
    /// of this length; to bound a whole run use [`CheckSettings::deadline`].
    pub time_limit: Option<Duration>,
    /// Absolute wall-clock deadline for the whole run (`None` = unbounded).
    /// Unlike `time_limit`, this is *not* re-armed per check window, so it
    /// is honored globally — the parallel engine stamps one deadline into
    /// every shard worker's settings. When both are set, whichever falls
    /// earlier fires.
    pub deadline: Option<std::time::Instant>,
    /// Run the structural-sweeping preprocessor ([`crate::preprocess`])
    /// on the spec/implementation pair before checking. Verdict-invariant
    /// by construction (the sweep preserves ternary functions at every
    /// kept point); off by default so callers opt in per entry point —
    /// the CLI enables it unless `--no-sweep` is given.
    pub sweep: bool,
    /// Computed-table (apply/ITE cache) capacity exponent: the cache holds
    /// at most `2^cache_bits` entries and is evicted wholesale when full.
    /// Clamped to [`bbec_bdd::MIN_CACHE_BITS`]`..=`[`bbec_bdd::MAX_CACHE_BITS`].
    pub cache_bits: u32,
    /// Observability sink shared by every check run with these settings:
    /// the symbolic context hands a clone to its BDD manager, the ladder
    /// opens one span per rung, and the per-output checks nest inside.
    /// Disabled by default (a no-op costing one branch per call site).
    pub tracer: bbec_trace::Tracer,
    /// Live heartbeat engine: the symbolic context hands a clone to its
    /// BDD manager (ticked from the amortised budget pulse), the ladder
    /// labels the current rung as the task, and the parallel engine scopes
    /// a per-shard region for each worker. Disabled by default.
    pub progress: bbec_trace::Progress,
    /// Warm [`bbec_bdd::ManagerPool`] the symbolic context draws its BDD
    /// manager from (and recycles it to on drop). `None` — the default —
    /// constructs a fresh manager per context. Purely a performance knob
    /// for long-lived processes: recycled managers behave bit-identically
    /// to fresh ones, so like the tracer this does not participate in
    /// [`crate::ledger::settings_key`].
    pub pool: Option<bbec_bdd::ManagerPool>,
    /// Worker threads for the shared-memory BDD engine. `1` (the default)
    /// uses the classic single-threaded manager; `>= 2` switches the
    /// symbolic context to [`bbec_bdd::SharedManager`] with this many
    /// participants sharing one unique table and computed cache.
    /// Verdict-invariant: BDDs are canonical, so schedules change *when*
    /// nodes are built, never which function a root denotes — verdicts,
    /// counterexamples and ladder rungs are bit-identical across thread
    /// counts. Like the tracer, this does not participate in
    /// [`crate::ledger::settings_key`]. The shared engine does not reorder
    /// variables, so `dynamic_reordering` is ignored when it is active.
    pub bdd_threads: usize,
}

impl Default for CheckSettings {
    fn default() -> Self {
        CheckSettings {
            dynamic_reordering: true,
            reorder_threshold: 65_536,
            random_patterns: 5_000,
            seed: 0xB1AC_B0C5,
            node_limit: Some(4_000_000),
            step_limit: None,
            time_limit: None,
            deadline: None,
            sweep: false,
            cache_bits: bbec_bdd::DEFAULT_CACHE_BITS,
            tracer: bbec_trace::Tracer::disabled(),
            progress: bbec_trace::Progress::disabled(),
            pool: None,
            bdd_threads: 1,
        }
    }
}

/// Details of an aborted check: what fired, and what the check had spent
/// when it fired.
#[derive(Debug, Clone, Default)]
pub struct BudgetAbort {
    /// Human-readable description of the exceeded limit.
    pub reason: String,
    /// Resources consumed up to the abort, when the check recorded them.
    pub stats: Option<ResourceStats>,
}

impl BudgetAbort {
    /// An abort with a reason and no recorded statistics.
    pub fn new(reason: impl Into<String>) -> Self {
        BudgetAbort { reason: reason.into(), stats: None }
    }

    /// Attaches partial resource statistics.
    pub fn with_stats(mut self, stats: ResourceStats) -> Self {
        self.stats = Some(stats);
        self
    }
}

impl fmt::Display for BudgetAbort {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.reason)
    }
}

/// Errors raised by the checks.
#[derive(Debug)]
pub enum CheckError {
    /// Specification and implementation interfaces differ.
    InterfaceMismatch { detail: String },
    /// An underlying netlist operation failed.
    Netlist(bbec_netlist::NetlistError),
    /// A partial-circuit structural invariant is violated.
    InvalidPartial(String),
    /// A resource budget was exceeded; the session/manager stays usable.
    BudgetExceeded(BudgetAbort),
    /// A check produced a counterexample that failed concrete replay
    /// validation ([`crate::cex::validate_counterexample`]) — an internal
    /// soundness bug in the reporting engine, never a property of the
    /// checked design.
    CounterexampleRejected {
        /// The check that produced the refuted witness.
        method: Method,
        /// Why replay refuted it.
        detail: String,
    },
}

impl fmt::Display for CheckError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckError::InterfaceMismatch { detail } => {
                write!(f, "interface mismatch: {detail}")
            }
            CheckError::Netlist(e) => write!(f, "netlist error: {e}"),
            CheckError::InvalidPartial(msg) => write!(f, "invalid partial circuit: {msg}"),
            CheckError::BudgetExceeded(abort) => write!(f, "budget exceeded: {abort}"),
            CheckError::CounterexampleRejected { method, detail } => {
                write!(f, "{method} produced a counterexample that fails replay: {detail}")
            }
        }
    }
}

impl Error for CheckError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CheckError::Netlist(e) => Some(e),
            _ => None,
        }
    }
}

impl From<bbec_netlist::NetlistError> for CheckError {
    fn from(e: bbec_netlist::NetlistError) -> Self {
        CheckError::Netlist(e)
    }
}

impl From<bbec_bdd::BudgetExceeded> for CheckError {
    fn from(e: bbec_bdd::BudgetExceeded) -> Self {
        CheckError::BudgetExceeded(BudgetAbort::new(e.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_match_paper_columns() {
        assert_eq!(Method::RandomPatterns.label(), "r.p.");
        assert_eq!(Method::Symbolic01X.label(), "0,1,X");
        assert_eq!(Method::Local.label(), "loc.");
        assert_eq!(Method::OutputExact.label(), "oe");
        assert_eq!(Method::InputExact.label(), "ie");
    }

    #[test]
    fn default_settings_mirror_paper() {
        let s = CheckSettings::default();
        assert!(s.dynamic_reordering);
        assert_eq!(s.random_patterns, 5_000);
    }

    #[test]
    fn error_display_is_informative() {
        let e = CheckError::InvalidPartial("box output driven".to_string());
        assert!(e.to_string().contains("box output driven"));
    }
}
