//! Bounded sequential extension — the paper's closing future-work item:
//! "how the methods can be extended to verify also sequential circuits
//! containing Black Boxes."
//!
//! A sequential design is modelled as a combinational transition circuit
//! whose interface carries the state: some inputs are *current-state* bits
//! and some outputs are *next-state* bits. [`unroll`] expands `k` time
//! frames into one combinational circuit (frame 0 reads the initial state,
//! frame `t+1` reads frame `t`'s next-state outputs), so every
//! combinational check in [`crate::checks`] becomes a *bounded* sequential
//! check.
//!
//! Black boxes are replicated per frame. For a real implementation the box
//! computes the *same* function in every frame; treating the copies as
//! independent gives each frame more freedom, so the resulting checks stay
//! **sound** (an error reported on the unrolling is a genuine sequential
//! error) but are more conservative than a shared-function treatment.

use crate::partial::{BlackBox, PartialCircuit};
use crate::report::CheckError;
use bbec_netlist::{Circuit, GateKind, SignalId};

/// A sequential design as a transition circuit plus state bookkeeping.
#[derive(Debug, Clone)]
pub struct SequentialCircuit {
    /// The combinational transition/output logic. State bits appear as
    /// ordinary inputs and outputs of this circuit.
    pub circuit: Circuit,
    /// Pairs `(input position, output position)`: output `o` of frame `t`
    /// drives input `i` of frame `t + 1`.
    pub state: Vec<(usize, usize)>,
    /// Reset values of the state inputs in frame 0 (same order as `state`).
    pub initial: Vec<bool>,
}

impl SequentialCircuit {
    /// Validates the state pairing.
    ///
    /// # Errors
    ///
    /// [`CheckError::InvalidPartial`] on out-of-range positions, duplicate
    /// pairings, or an initial-state length mismatch.
    pub fn new(
        circuit: Circuit,
        state: Vec<(usize, usize)>,
        initial: Vec<bool>,
    ) -> Result<SequentialCircuit, CheckError> {
        if initial.len() != state.len() {
            return Err(CheckError::InvalidPartial(format!(
                "{} initial values for {} state bits",
                initial.len(),
                state.len()
            )));
        }
        let mut seen_in = std::collections::HashSet::new();
        let mut seen_out = std::collections::HashSet::new();
        for &(i, o) in &state {
            if i >= circuit.inputs().len() || o >= circuit.outputs().len() {
                return Err(CheckError::InvalidPartial(format!(
                    "state pair ({i}, {o}) out of range"
                )));
            }
            if !seen_in.insert(i) || !seen_out.insert(o) {
                return Err(CheckError::InvalidPartial(format!(
                    "state position reused in pair ({i}, {o})"
                )));
            }
        }
        Ok(SequentialCircuit { circuit, state, initial })
    }

    /// Builds a sequential circuit from a parsed ISCAS-89-style `.bench`
    /// netlist with DFFs (see [`bbec_netlist::bench::parse_sequential`]).
    ///
    /// # Errors
    ///
    /// [`CheckError::InvalidPartial`] if `initial` does not match the
    /// register count.
    pub fn from_bench(
        parsed: bbec_netlist::bench::SequentialBench,
        initial: Vec<bool>,
    ) -> Result<SequentialCircuit, CheckError> {
        SequentialCircuit::new(parsed.circuit, parsed.state, initial)
    }

    /// Positions of the non-state (free) primary inputs.
    pub fn free_inputs(&self) -> Vec<usize> {
        let state: std::collections::HashSet<usize> = self.state.iter().map(|&(i, _)| i).collect();
        (0..self.circuit.inputs().len()).filter(|i| !state.contains(i)).collect()
    }

    /// Positions of the non-state (observable) primary outputs.
    pub fn observable_outputs(&self) -> Vec<usize> {
        let state: std::collections::HashSet<usize> = self.state.iter().map(|&(_, o)| o).collect();
        (0..self.circuit.outputs().len()).filter(|o| !state.contains(o)).collect()
    }
}

/// Expands `frames` time frames of `seq` into one combinational circuit.
///
/// The result's inputs are the free inputs of every frame
/// (`f<t>_<name>`), its outputs the observable outputs of every frame; the
/// final frame's next-state outputs are also exposed (`f<last>_<name>`),
/// so state equivalence at the horizon can be checked too. Undriven
/// signals (black-box outputs) are replicated per frame as
/// `f<t>_<name>`.
///
/// # Errors
///
/// [`CheckError::InvalidPartial`] if `frames == 0`; netlist errors cannot
/// normally occur for a validated transition circuit.
pub fn unroll(seq: &SequentialCircuit, frames: usize) -> Result<Circuit, CheckError> {
    unroll_impl(seq, frames).map(|(c, _)| c)
}

/// Per frame, the host signal standing for each original signal (indexed
/// by original signal id; `None` for signals absent from the frame).
type FrameMaps = Vec<Vec<Option<SignalId>>>;

/// Core expansion; also returns the per-frame signal maps.
fn unroll_impl(seq: &SequentialCircuit, frames: usize) -> Result<(Circuit, FrameMaps), CheckError> {
    if frames == 0 {
        return Err(CheckError::InvalidPartial("cannot unroll zero frames".to_string()));
    }
    let tc = &seq.circuit;
    let mut b = Circuit::builder(&format!("{}_x{frames}", tc.name()));
    let state_in: std::collections::HashSet<usize> = seq.state.iter().map(|&(i, _)| i).collect();
    // Previous frame's next-state signals, keyed by the input position they
    // feed; frame 0 uses reset constants.
    let mut prev_state: std::collections::HashMap<usize, SignalId> =
        std::collections::HashMap::new();
    let mut frame_maps: Vec<Vec<Option<SignalId>>> = Vec::with_capacity(frames);
    for frame in 0..frames {
        let mut map: Vec<Option<SignalId>> = vec![None; tc.signal_count()];
        for (pos, &s) in tc.inputs().iter().enumerate() {
            let sig = if state_in.contains(&pos) {
                match prev_state.get(&pos) {
                    Some(&w) => w,
                    None => {
                        // Frame 0: reset value.
                        let k = seq
                            .state
                            .iter()
                            .position(|&(i, _)| i == pos)
                            .expect("state input is paired");
                        b.gate(
                            if seq.initial[k] { GateKind::Const1 } else { GateKind::Const0 },
                            &[],
                        )
                    }
                }
            } else {
                b.input(&format!("f{frame}_{}", tc.signal_name(s)))
            };
            map[s.index()] = Some(sig);
        }
        for s in tc.undriven_signals() {
            map[s.index()] = Some(b.signal(&format!("f{frame}_{}", tc.signal_name(s))));
        }
        for &g in tc.topo_order() {
            let gate = &tc.gates()[g as usize];
            let ins: Vec<SignalId> =
                gate.inputs.iter().map(|s| map[s.index()].expect("sources set")).collect();
            map[gate.output.index()] = Some(b.gate(gate.kind, &ins));
        }
        // Expose observable outputs; collect next-state for the next frame.
        let mut next_state: std::collections::HashMap<usize, SignalId> =
            std::collections::HashMap::new();
        for (opos, (name, s)) in tc.outputs().iter().enumerate() {
            let wire = map[s.index()].expect("outputs resolved");
            if let Some(&(ipos, _)) = seq.state.iter().find(|&&(_, o)| o == opos) {
                next_state.insert(ipos, wire);
                if frame + 1 == frames {
                    // Horizon state is observable for state-equivalence.
                    b.output(&format!("f{frame}_{name}"), wire);
                }
            } else {
                b.output(&format!("f{frame}_{name}"), wire);
            }
        }
        prev_state = next_state;
        frame_maps.push(map);
    }
    let host = b.build_allow_undriven().map_err(CheckError::Netlist)?;
    Ok((host, frame_maps))
}

/// Unrolls a partial sequential implementation: the host circuit is
/// time-frame expanded and every black box is replicated once per frame.
///
/// # Errors
///
/// As [`unroll`], plus partial-circuit validation errors.
pub fn unroll_partial(
    partial: &PartialCircuit,
    state: &[(usize, usize)],
    initial: &[bool],
    frames: usize,
) -> Result<PartialCircuit, CheckError> {
    let seq = SequentialCircuit::new(partial.circuit().clone(), state.to_vec(), initial.to_vec())?;
    let (host, frame_maps) = unroll_impl(&seq, frames)?;
    let mut boxes = Vec::new();
    for (frame, map) in frame_maps.iter().enumerate() {
        for bx in partial.boxes() {
            let relocate = |s: SignalId| -> SignalId {
                map[s.index()].expect("every host signal has a frame copy")
            };
            boxes.push(BlackBox {
                name: format!("f{frame}_{}", bx.name),
                inputs: bx.inputs.iter().map(|&s| relocate(s)).collect(),
                outputs: bx.outputs.iter().map(|&s| relocate(s)).collect(),
            });
        }
    }
    PartialCircuit::new(host, boxes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checks;
    use crate::report::{CheckSettings, Verdict};
    use bbec_netlist::Circuit;

    /// A 2-bit counter with enable: state (s0, s1), output `carry`.
    fn counter() -> SequentialCircuit {
        let mut b = Circuit::builder("cnt2");
        let en = b.input("en");
        let s0 = b.input("s0");
        let s1 = b.input("s1");
        let n0 = b.xor2(s0, en);
        let c0 = b.and2(s0, en);
        let n1 = b.xor2(s1, c0);
        let carry = b.and2(s1, c0);
        b.output("carry", carry);
        b.output("n0", n0);
        b.output("n1", n1);
        let c = b.build().unwrap();
        SequentialCircuit::new(c, vec![(1, 1), (2, 2)], vec![false, false]).unwrap()
    }

    #[test]
    fn unrolled_counter_counts() {
        let seq = counter();
        let k = 5;
        let c = unroll(&seq, k).unwrap();
        // Inputs: one enable per frame; outputs: carry per frame + horizon state.
        assert_eq!(c.inputs().len(), k);
        assert_eq!(c.outputs().len(), k + 2);
        // Enable every frame: counter 0→1→2→3→0(carry)→1; carry at frame 3.
        let out = c.eval(&vec![true; k]).unwrap();
        let carries = &out[..]; // carry outputs come first per frame order
                                // Locate carry outputs by name to be robust.
        let mut carry_by_frame = vec![false; k];
        for (i, (name, _)) in c.outputs().iter().enumerate() {
            if let Some(rest) = name.strip_prefix('f') {
                if let Some((frame, port)) = rest.split_once('_') {
                    if port == "carry" {
                        carry_by_frame[frame.parse::<usize>().unwrap()] = out[i];
                    }
                }
            }
        }
        assert_eq!(carry_by_frame, vec![false, false, false, true, false]);
        let _ = carries;
    }

    #[test]
    fn validation_rejects_bad_pairings() {
        let seq = counter();
        let c = seq.circuit.clone();
        assert!(SequentialCircuit::new(c.clone(), vec![(9, 1)], vec![false]).is_err());
        assert!(
            SequentialCircuit::new(c.clone(), vec![(1, 1), (1, 2)], vec![false, false]).is_err()
        );
        assert!(SequentialCircuit::new(c, vec![(1, 1)], vec![]).is_err());
        assert!(unroll(&counter(), 0).is_err());
    }

    #[test]
    fn bounded_sequential_bbec_catches_next_state_bug() {
        // Specification: the counter. Implementation: the increment logic
        // of bit 1 is still a black box, but bit 0's XOR degenerated into
        // an OR — after two enabled steps the state is provably wrong.
        let spec_seq = counter();
        let spec = unroll(&spec_seq, 3).unwrap();

        let mut b = Circuit::builder("cnt2_bad");
        let en = b.input("en");
        let s0 = b.input("s0");
        let s1 = b.input("s1");
        let n0 = b.or2(s0, en); // bug: should be XOR
        let c0 = b.and2(s0, en);
        let z = b.signal("bb_n1"); // unfinished bit-1 logic
        let carry = b.and2(s1, c0);
        b.output("carry", carry);
        b.output("n0", n0);
        b.output("n1", z);
        let host = b.build_allow_undriven().unwrap();
        let partial = PartialCircuit::new(
            host,
            vec![BlackBox { name: "BB1".to_string(), inputs: vec![s1, c0], outputs: vec![z] }],
        )
        .unwrap();
        let unrolled = unroll_partial(&partial, &[(1, 1), (2, 2)], &[false, false], 3).unwrap();
        assert_eq!(unrolled.boxes().len(), 3);
        let settings = CheckSettings { dynamic_reordering: false, ..Default::default() };
        let outcome = checks::input_exact(&spec, &unrolled, &settings).unwrap();
        assert_eq!(outcome.verdict, Verdict::ErrorFound, "sequential bug must be caught");
    }

    #[test]
    fn correct_partial_sequential_design_passes() {
        // Same setup but with the correct XOR: completable, so no check may
        // complain (soundness of the per-frame box replication).
        let spec_seq = counter();
        let spec = unroll(&spec_seq, 3).unwrap();
        let mut b = Circuit::builder("cnt2_ok");
        let en = b.input("en");
        let s0 = b.input("s0");
        let s1 = b.input("s1");
        let n0 = b.xor2(s0, en);
        let c0 = b.and2(s0, en);
        let z = b.signal("bb_n1");
        let carry = b.and2(s1, c0);
        b.output("carry", carry);
        b.output("n0", n0);
        b.output("n1", z);
        let host = b.build_allow_undriven().unwrap();
        let partial = PartialCircuit::new(
            host,
            vec![BlackBox { name: "BB1".to_string(), inputs: vec![s1, c0], outputs: vec![z] }],
        )
        .unwrap();
        let unrolled = unroll_partial(&partial, &[(1, 1), (2, 2)], &[false, false], 3).unwrap();
        let settings = CheckSettings { dynamic_reordering: false, ..Default::default() };
        for check in [checks::symbolic_01x, checks::local_check, checks::output_exact] {
            let outcome = check(&spec, &unrolled, &settings).unwrap();
            assert_eq!(outcome.verdict, Verdict::NoErrorFound);
        }
        let n0_idx = 1; // unused: documentation of intent
        let _ = n0_idx;
        let _ = n0;
    }
}
