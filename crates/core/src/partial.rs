//! Partial implementations: circuits with black boxes.

use crate::report::CheckError;
use bbec_netlist::{Circuit, SignalId};
use rand::Rng;
use std::collections::{HashMap, HashSet};

/// One black box: an unfinished region with fixed input and output pins.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlackBox {
    /// Display name.
    pub name: String,
    /// Signals of the partial circuit feeding the box, in pin order.
    pub inputs: Vec<SignalId>,
    /// Signals driven by the box; they are undriven in the host circuit.
    pub outputs: Vec<SignalId>,
}

/// A combinational circuit with black boxes.
///
/// The host [`Circuit`] contains all finished logic; every black-box output
/// is an undriven signal of the host. Boxes are stored in topological order
/// (a box may only read signals that depend on *earlier* boxes), which the
/// input-exact check of the paper requires.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PartialCircuit {
    circuit: Circuit,
    boxes: Vec<BlackBox>,
}

impl PartialCircuit {
    /// Wraps a host circuit and box list, validating the structure.
    ///
    /// Boxes are re-sorted into topological order automatically.
    ///
    /// # Errors
    ///
    /// [`CheckError::InvalidPartial`] if a box output is driven inside the
    /// host, claimed by two boxes, or if the box dependency graph is cyclic.
    pub fn new(circuit: Circuit, boxes: Vec<BlackBox>) -> Result<PartialCircuit, CheckError> {
        let undriven: HashSet<SignalId> = circuit.undriven_signals().into_iter().collect();
        let mut claimed: HashSet<SignalId> = HashSet::new();
        for b in &boxes {
            if b.outputs.is_empty() {
                return Err(CheckError::InvalidPartial(format!("box `{}` has no outputs", b.name)));
            }
            for &o in &b.outputs {
                if !undriven.contains(&o) {
                    return Err(CheckError::InvalidPartial(format!(
                        "box `{}` output `{}` is driven inside the host circuit",
                        b.name,
                        circuit.signal_name(o)
                    )));
                }
                if !claimed.insert(o) {
                    return Err(CheckError::InvalidPartial(format!(
                        "signal `{}` claimed by two boxes",
                        circuit.signal_name(o)
                    )));
                }
            }
            for &i in &b.inputs {
                if i.index() >= circuit.signal_count() {
                    return Err(CheckError::InvalidPartial(format!(
                        "box `{}` reads an unknown signal",
                        b.name
                    )));
                }
            }
        }
        // A box must be implementable as a combinational block: its input
        // cone may not contain any of its own outputs, otherwise every
        // completion would create a combinational cycle.
        for b in &boxes {
            let cone = transitive_sources(&circuit, &b.inputs);
            if let Some(&o) = b.outputs.iter().find(|o| cone.contains(o)) {
                return Err(CheckError::InvalidPartial(format!(
                    "box `{}` input cone contains its own output `{}` (non-convex region)",
                    b.name,
                    circuit.signal_name(o)
                )));
            }
        }
        let boxes = topo_sort_boxes(&circuit, boxes)?;
        Ok(PartialCircuit { circuit, boxes })
    }

    /// The host circuit (black-box outputs are its undriven signals).
    pub fn circuit(&self) -> &Circuit {
        &self.circuit
    }

    /// The black boxes, in topological order.
    pub fn boxes(&self) -> &[BlackBox] {
        &self.boxes
    }

    /// All black-box output signals, box by box (the paper's `Z₁ … Z_l`).
    pub fn box_outputs(&self) -> Vec<SignalId> {
        self.boxes.iter().flat_map(|b| b.outputs.iter().copied()).collect()
    }

    /// Total number of black-box output signals (`l` in the paper).
    pub fn num_box_outputs(&self) -> usize {
        self.boxes.iter().map(|b| b.outputs.len()).sum()
    }

    /// Builds a partial implementation by moving one set of gates of a
    /// complete circuit into a single black box.
    ///
    /// The box's outputs are the removed-gate outputs still observable
    /// (read by remaining gates or primary outputs); its inputs are the
    /// signals the removed region reads from the rest of the circuit.
    ///
    /// # Errors
    ///
    /// [`CheckError::InvalidPartial`] if `gates` is empty or the removed
    /// region has no observable output.
    pub fn black_box_gates(full: &Circuit, gates: &[u32]) -> Result<PartialCircuit, CheckError> {
        Self::black_box_partition(full, std::slice::from_ref(&gates.to_vec()))
    }

    /// Builds a partial implementation with one black box per gate set.
    ///
    /// # Errors
    ///
    /// As [`PartialCircuit::black_box_gates`]; additionally if the induced
    /// box dependency graph is cyclic.
    pub fn black_box_partition(
        full: &Circuit,
        gate_sets: &[Vec<u32>],
    ) -> Result<PartialCircuit, CheckError> {
        let mut all: Vec<u32> = Vec::new();
        let mut owner: HashMap<u32, usize> = HashMap::new();
        for (bi, set) in gate_sets.iter().enumerate() {
            if set.is_empty() {
                return Err(CheckError::InvalidPartial(format!("box {bi} is empty")));
            }
            for &g in set {
                if g as usize >= full.gates().len() {
                    return Err(CheckError::InvalidPartial(format!(
                        "gate {g} out of range for box {bi}"
                    )));
                }
                if owner.insert(g, bi).is_some() {
                    return Err(CheckError::InvalidPartial(format!(
                        "gate {g} assigned to two boxes"
                    )));
                }
                all.push(g);
            }
        }
        let host = full.without_gates(&all);
        let removed: HashSet<u32> = all.iter().copied().collect();
        let mut boxes = Vec::new();
        for (bi, set) in gate_sets.iter().enumerate() {
            let in_box: HashSet<u32> = set.iter().copied().collect();
            let driven_in_box: HashSet<SignalId> =
                set.iter().map(|&g| full.gates()[g as usize].output).collect();
            let mut outputs: Vec<SignalId> = set
                .iter()
                .map(|&g| full.gates()[g as usize].output)
                .filter(|s| {
                    // Observable outside this box (note: reads by this box's
                    // own gates do not count).
                    let read_elsewhere = host.gates().iter().any(|gate| gate.inputs.contains(s))
                        || host.outputs().iter().any(|&(_, o)| o == *s)
                        || removed.iter().any(|&g| {
                            !in_box.contains(&g) && full.gates()[g as usize].inputs.contains(s)
                        });
                    read_elsewhere
                })
                .collect();
            outputs.sort_unstable();
            outputs.dedup();
            if outputs.is_empty() {
                return Err(CheckError::InvalidPartial(format!(
                    "box {bi} has no observable output"
                )));
            }
            let mut inputs: Vec<SignalId> = set
                .iter()
                .flat_map(|&g| full.gates()[g as usize].inputs.iter().copied())
                .filter(|s| !driven_in_box.contains(s))
                .collect();
            inputs.sort_unstable();
            inputs.dedup();
            boxes.push(BlackBox { name: format!("BB{}", bi + 1), inputs, outputs });
        }
        Self::new(host, boxes)
    }

    /// The paper's experimental setup: move `fraction` of the gates into
    /// `num_boxes` black boxes, chosen pseudo-randomly.
    ///
    /// Each box is a randomly placed contiguous *window* of the topological
    /// gate order. Windows are convex by construction (every path between
    /// two window gates runs through gates of the same window), pairwise
    /// disjoint, and naturally ordered, so the box DAG is acyclic and each
    /// box is implementable as a combinational block — the structural
    /// invariants the paper's input-exact check relies on.
    ///
    /// # Errors
    ///
    /// [`CheckError::InvalidPartial`] if the request selects no gates or a
    /// box ends up unobservable (retry with another seed).
    pub fn random_black_boxes<R: Rng + ?Sized>(
        full: &Circuit,
        fraction: f64,
        num_boxes: usize,
        rng: &mut R,
    ) -> Result<PartialCircuit, CheckError> {
        let sets = Self::random_convex_partition(full, fraction, num_boxes, rng);
        Self::black_box_partition(full, &sets)
    }

    /// The gate-set selection behind [`PartialCircuit::random_black_boxes`],
    /// exposed so an experiment harness can mutate the *remaining* gates and
    /// re-extract the same boxes from the faulty circuit.
    pub fn random_convex_partition<R: Rng + ?Sized>(
        full: &Circuit,
        fraction: f64,
        num_boxes: usize,
        rng: &mut R,
    ) -> Vec<Vec<u32>> {
        let n = full.gates().len();
        // At least one gate per requested box, but never more than exist.
        let count = ((n as f64 * fraction).round() as usize).max(num_boxes).min(n);
        let num_boxes = num_boxes.min(count).max(1);
        let box_size = (count / num_boxes).max(1);
        // Place `num_boxes` disjoint windows of `box_size` gates into the
        // topological order: draw the gaps around them as a random
        // composition of the slack.
        let slack = n - box_size * num_boxes;
        let mut cuts: Vec<usize> = (0..num_boxes).map(|_| rng.random_range(0..=slack)).collect();
        cuts.sort_unstable();
        let topo = full.topo_order();
        let mut sets = Vec::with_capacity(num_boxes);
        for (i, cut) in cuts.iter().enumerate() {
            let start = cut + i * box_size;
            let set: Vec<u32> = topo[start..start + box_size].to_vec();
            sets.push(set);
        }
        sets
    }
}

/// Orders boxes topologically by their data dependencies.
fn topo_sort_boxes(circuit: &Circuit, boxes: Vec<BlackBox>) -> Result<Vec<BlackBox>, CheckError> {
    let n = boxes.len();
    if n <= 1 {
        return Ok(boxes);
    }
    // Which box does each box-output signal belong to?
    let mut owner: HashMap<SignalId, usize> = HashMap::new();
    for (bi, b) in boxes.iter().enumerate() {
        for &o in &b.outputs {
            owner.insert(o, bi);
        }
    }
    // Box j depends on box i if any signal in the cone of j's inputs is an
    // output of box i.
    let mut deps: Vec<HashSet<usize>> = vec![HashSet::new(); n];
    for (bj, b) in boxes.iter().enumerate() {
        let cone = transitive_sources(circuit, &b.inputs);
        for s in cone {
            if let Some(&bi) = owner.get(&s) {
                if bi != bj {
                    deps[bj].insert(bi);
                }
            }
        }
    }
    // Kahn.
    let mut order = Vec::with_capacity(n);
    let mut placed = vec![false; n];
    while order.len() < n {
        let next = (0..n).find(|&j| !placed[j] && deps[j].iter().all(|&i| placed[i])).ok_or_else(
            || CheckError::InvalidPartial("cyclic dependency between black boxes".to_string()),
        )?;
        placed[next] = true;
        order.push(next);
    }
    let mut boxes: Vec<Option<BlackBox>> = boxes.into_iter().map(Some).collect();
    Ok(order.into_iter().map(|i| boxes[i].take().expect("each box placed once")).collect())
}

/// Closes a gate set under paths between its members: every gate that is
/// both downstream of some member and upstream of another joins the set.
/// The result is a convex region replaceable by one combinational block —
/// use it to turn a hand-picked suspect set into a valid box for
/// [`PartialCircuit::black_box_gates`].
pub fn convex_closure(circuit: &Circuit, set: &[u32]) -> Vec<u32> {
    let in_set: HashSet<u32> = set.iter().copied().collect();
    // Reader map: which gates consume each signal?
    let mut readers: Vec<Vec<u32>> = vec![Vec::new(); circuit.signal_count()];
    for (gi, gate) in circuit.gates().iter().enumerate() {
        for &s in &gate.inputs {
            readers[s.index()].push(gi as u32);
        }
    }
    // Downstream of the set.
    let mut down = vec![false; circuit.gates().len()];
    let mut stack: Vec<u32> = set.to_vec();
    for &g in set {
        down[g as usize] = true;
    }
    while let Some(g) = stack.pop() {
        let out = circuit.gates()[g as usize].output;
        for &r in &readers[out.index()] {
            if !std::mem::replace(&mut down[r as usize], true) {
                stack.push(r);
            }
        }
    }
    // Upstream of the set.
    let mut up = vec![false; circuit.gates().len()];
    let mut stack: Vec<u32> = set.to_vec();
    for &g in set {
        up[g as usize] = true;
    }
    while let Some(g) = stack.pop() {
        for &s in &circuit.gates()[g as usize].inputs {
            if let Some(di) = circuit.driver_index_of(s) {
                if !std::mem::replace(&mut up[di as usize], true) {
                    stack.push(di);
                }
            }
        }
    }
    let mut closed: Vec<u32> = (0..circuit.gates().len() as u32)
        .filter(|&g| in_set.contains(&g) || (down[g as usize] && up[g as usize]))
        .collect();
    closed.sort_unstable();
    closed
}

/// All signals in the transitive fanin of `roots` (including the roots).
fn transitive_sources(circuit: &Circuit, roots: &[SignalId]) -> HashSet<SignalId> {
    let mut seen: HashSet<SignalId> = HashSet::new();
    let mut stack: Vec<SignalId> = roots.to_vec();
    while let Some(s) = stack.pop() {
        if !seen.insert(s) {
            continue;
        }
        if let Some(gate) = circuit.driver_of(s) {
            stack.extend(gate.inputs.iter().copied());
        }
    }
    seen
}

#[cfg(test)]
mod tests {
    use super::*;
    use bbec_netlist::generators;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn adder() -> Circuit {
        generators::ripple_carry_adder(4)
    }

    #[test]
    fn black_box_single_gate() {
        let c = adder();
        let p = PartialCircuit::black_box_gates(&c, &[0]).unwrap();
        assert_eq!(p.boxes().len(), 1);
        let b = &p.boxes()[0];
        assert_eq!(b.outputs.len(), 1);
        assert_eq!(b.inputs.len(), c.gates()[0].inputs.len());
        assert_eq!(p.circuit().gates().len(), c.gates().len() - 1);
        assert_eq!(p.num_box_outputs(), 1);
    }

    #[test]
    fn box_boundary_is_cut_correctly() {
        let c = adder();
        // Remove the first full-adder entirely (5 gates).
        let p = PartialCircuit::black_box_gates(&c, &[0, 1, 2, 3, 4]).unwrap();
        let b = &p.boxes()[0];
        // Observable outputs: sum0 and the carry into stage 1.
        assert_eq!(b.outputs.len(), 2);
        // Inputs: a0, b0, cin.
        assert_eq!(b.inputs.len(), 3);
    }

    #[test]
    fn internal_signals_are_not_box_outputs() {
        let c = adder();
        let p = PartialCircuit::black_box_gates(&c, &[0, 1, 2, 3, 4]).unwrap();
        // The adder's internal xor (gate 0 output) feeds only removed gates,
        // so it must not be listed as a box output.
        let internal = c.gates()[0].output;
        assert!(!p.boxes()[0].outputs.contains(&internal));
    }

    #[test]
    fn partition_into_two_boxes_is_topologically_ordered() {
        let c = adder();
        // Stage 0 gates and stage 2 gates.
        let p =
            PartialCircuit::black_box_partition(&c, &[vec![10, 11, 12], vec![0, 1, 2]]).unwrap();
        assert_eq!(p.boxes().len(), 2);
        // After sorting, the box with the earlier gates must come first: its
        // outputs feed (transitively) the later box's inputs.
        let first = &p.boxes()[0];
        assert!(
            first.outputs.iter().any(|&o| {
                let cone = transitive_sources(p.circuit(), &p.boxes()[1].inputs);
                cone.contains(&o)
            }),
            "first box must feed the second"
        );
    }

    #[test]
    fn rejects_overlapping_boxes_and_bad_gates() {
        let c = adder();
        assert!(PartialCircuit::black_box_partition(&c, &[vec![0], vec![0]]).is_err());
        assert!(PartialCircuit::black_box_partition(&c, &[vec![999]]).is_err());
        assert!(PartialCircuit::black_box_partition(&c, &[vec![]]).is_err());
    }

    #[test]
    fn random_selection_respects_fraction_and_box_count() {
        let c = generators::magnitude_comparator(8);
        let mut rng = StdRng::seed_from_u64(3);
        let p = PartialCircuit::random_black_boxes(&c, 0.1, 1, &mut rng).unwrap();
        assert_eq!(p.boxes().len(), 1);
        let removed = c.gates().len() - p.circuit().gates().len();
        let expect = (c.gates().len() as f64 * 0.1).round() as usize;
        // Convex closure may add path gates on top of the raw selection.
        assert!(removed >= expect, "removed {removed} < requested {expect}");
        assert!(removed <= c.gates().len() / 2, "closure exploded: {removed}");
        let p5 = PartialCircuit::random_black_boxes(&c, 0.2, 5, &mut rng).unwrap();
        assert!(p5.boxes().len() <= 5 && p5.boxes().len() >= 2);
    }

    #[test]
    fn random_selection_is_reproducible() {
        let c = adder();
        let a =
            PartialCircuit::random_black_boxes(&c, 0.3, 2, &mut StdRng::seed_from_u64(7)).unwrap();
        let b =
            PartialCircuit::random_black_boxes(&c, 0.3, 2, &mut StdRng::seed_from_u64(7)).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn explicit_construction_validates_outputs() {
        let mut b = Circuit::builder("p");
        let x = b.input("x");
        let z = b.signal("z");
        let f = b.and2(x, z);
        b.output("f", f);
        let host = b.build_allow_undriven().unwrap();
        // Claiming a *driven* signal as box output must fail.
        let bad = BlackBox { name: "B".to_string(), inputs: vec![x], outputs: vec![f] };
        assert!(PartialCircuit::new(host.clone(), vec![bad]).is_err());
        // Claiming the undriven signal works.
        let good = BlackBox { name: "B".to_string(), inputs: vec![x], outputs: vec![z] };
        let p = PartialCircuit::new(host, vec![good]).unwrap();
        assert_eq!(p.box_outputs(), vec![z]);
    }
}
