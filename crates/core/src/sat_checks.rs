//! SAT-based check variants — the paper's future-work arm ("we plan to
//! compare our BDD based implementation of the different checks to a
//! version using SAT engines").
//!
//! * [`sat_dual_rail`] re-implements the symbolic 0,1,X check through the
//!   two-bit signal encoding of Jain et al. [10] and a single SAT call.
//! * [`sat_output_exact`] re-implements the output-exact check (Lemma 2.2)
//!   as the 2QBF query `∃X ∀Z. ⋁_j ¬cond_j`, solved by the CEGAR engine in
//!   [`bbec_sat::qbf`].

use crate::checks::validate_interface;
use crate::partial::PartialCircuit;
use crate::report::{
    BudgetAbort, CheckError, CheckOutcome, CheckSettings, Counterexample, Method, ResourceStats,
    Verdict,
};
use bbec_netlist::{Circuit, CircuitBuilder, GateKind, SignalId};
use bbec_sat::qbf::{exists_forall, ExistsForallResult};
use bbec_sat::tseitin::encode;
use bbec_sat::Solver;
use std::time::Instant;

/// Replays `circuit`'s gates into `builder`; `map` must pre-seed every
/// primary input and undriven signal and receives all internal signals.
fn append_circuit(builder: &mut CircuitBuilder, circuit: &Circuit, map: &mut [Option<SignalId>]) {
    for &g in circuit.topo_order() {
        let gate = &circuit.gates()[g as usize];
        let ins: Vec<SignalId> =
            gate.inputs.iter().map(|s| map[s.index()].expect("sources seeded")).collect();
        map[gate.output.index()] = Some(builder.gate(gate.kind, &ins));
    }
}

/// SAT-based symbolic 0,1,X check using the dual-rail (two-bit) encoding.
///
/// Builds one miter netlist — spec in plain logic, partial implementation
/// in dual-rail `(is0, is1)` logic with black-box outputs pinned to `X` —
/// and asks a single SAT query for an input where some implementation
/// output is definite and wrong. Detects exactly the same errors as
/// [`crate::checks::symbolic_01x`].
///
/// # Errors
///
/// [`CheckError::InterfaceMismatch`] on interface mismatches.
pub fn sat_dual_rail(
    spec: &Circuit,
    partial: &PartialCircuit,
    _settings: &CheckSettings,
) -> Result<CheckOutcome, CheckError> {
    validate_interface(spec, partial)?;
    let start = Instant::now();
    let host = partial.circuit();
    let mut b = Circuit::builder("dual_rail_miter");
    let xs: Vec<SignalId> = (0..spec.inputs().len()).map(|i| b.input(&format!("x{i}"))).collect();

    // Plain replay of the specification.
    let mut spec_map: Vec<Option<SignalId>> = vec![None; spec.signal_count()];
    for (pos, &s) in spec.inputs().iter().enumerate() {
        spec_map[s.index()] = Some(xs[pos]);
    }
    append_circuit(&mut b, spec, &mut spec_map);
    let f: Vec<SignalId> =
        spec.outputs().iter().map(|&(_, s)| spec_map[s.index()].expect("driven")).collect();

    // Dual-rail replay of the partial implementation.
    let zero = b.constant(false);
    let mut rail0: Vec<Option<SignalId>> = vec![None; host.signal_count()];
    let mut rail1: Vec<Option<SignalId>> = vec![None; host.signal_count()];
    for (pos, &s) in host.inputs().iter().enumerate() {
        rail1[s.index()] = Some(xs[pos]);
        rail0[s.index()] = Some(b.not(xs[pos]));
    }
    for s in host.undriven_signals() {
        rail0[s.index()] = Some(zero); // X: neither definitely 0 …
        rail1[s.index()] = Some(zero); // … nor definitely 1
    }
    for &g in host.topo_order() {
        let gate = &host.gates()[g as usize];
        let in0: Vec<SignalId> =
            gate.inputs.iter().map(|s| rail0[s.index()].expect("seeded")).collect();
        let in1: Vec<SignalId> =
            gate.inputs.iter().map(|s| rail1[s.index()].expect("seeded")).collect();
        let (o0, o1) = dual_rail_gate(&mut b, gate.kind, &in0, &in1);
        rail0[gate.output.index()] = Some(o0);
        rail1[gate.output.index()] = Some(o1);
    }

    // err = ⋁_j (is1_j ∧ ¬f_j) ∨ (is0_j ∧ f_j).
    let mut errs = Vec::new();
    for (j, &(_, s)) in host.outputs().iter().enumerate() {
        let o0 = rail0[s.index()].expect("seeded");
        let o1 = rail1[s.index()].expect("seeded");
        let nf = b.not(f[j]);
        let w1 = b.and2(o1, nf);
        let w0 = b.and2(o0, f[j]);
        errs.push(b.or2(w1, w0));
    }
    let err = b.tree(GateKind::Or, &errs);
    b.output("err", err);
    let miter = b.build().map_err(CheckError::Netlist)?;

    let mut solver = Solver::new();
    let cnf = encode(&mut solver, &miter, &[]);
    solver.add_clause(&[cnf.output_lits[0]]);
    let outcome = if solver.solve().is_sat() {
        let inputs: Vec<bool> = cnf
            .input_lits
            .iter()
            .map(|l| solver.value(l.var()).unwrap_or(false) != l.is_neg())
            .collect();
        let cex = Counterexample { inputs, output: None };
        crate::cex::validate_counterexample(spec, partial, &cex).map_err(|detail| {
            CheckError::CounterexampleRejected { method: Method::SatDualRail, detail }
        })?;
        CheckOutcome {
            method: Method::SatDualRail,
            verdict: Verdict::ErrorFound,
            counterexample: Some(cex),
            stats: ResourceStats { duration: start.elapsed(), ..Default::default() },
        }
    } else {
        CheckOutcome {
            method: Method::SatDualRail,
            verdict: Verdict::NoErrorFound,
            counterexample: None,
            stats: ResourceStats { duration: start.elapsed(), ..Default::default() },
        }
    };
    Ok(outcome)
}

/// Dual-rail expansion of one gate: returns the `(is0, is1)` signals.
fn dual_rail_gate(
    b: &mut CircuitBuilder,
    kind: GateKind,
    in0: &[SignalId],
    in1: &[SignalId],
) -> (SignalId, SignalId) {
    match kind {
        GateKind::And => (b.tree(GateKind::Or, in0), b.tree(GateKind::And, in1)),
        GateKind::Nand => {
            let (o0, o1) = dual_rail_gate(b, GateKind::And, in0, in1);
            (o1, o0)
        }
        GateKind::Or => (b.tree(GateKind::And, in0), b.tree(GateKind::Or, in1)),
        GateKind::Nor => {
            let (o0, o1) = dual_rail_gate(b, GateKind::Or, in0, in1);
            (o1, o0)
        }
        GateKind::Xor | GateKind::Xnor => {
            let (mut a0, mut a1) = (in0[0], in1[0]);
            for k in 1..in0.len() {
                let (b0, b1) = (in0[k], in1[k]);
                let p = b.and2(a1, b0);
                let q = b.and2(a0, b1);
                let one = b.or2(p, q);
                let r = b.and2(a0, b0);
                let s = b.and2(a1, b1);
                let zero = b.or2(r, s);
                a0 = zero;
                a1 = one;
            }
            if kind == GateKind::Xnor {
                (a1, a0)
            } else {
                (a0, a1)
            }
        }
        GateKind::Not => (in1[0], in0[0]),
        GateKind::Buf => (in0[0], in1[0]),
        GateKind::Const0 => {
            let one = b.constant(true);
            let zero = b.constant(false);
            (one, zero)
        }
        GateKind::Const1 => {
            let one = b.constant(true);
            let zero = b.constant(false);
            (zero, one)
        }
    }
}

/// SAT/CEGAR-based output-exact check: decides `∃X ∀Z. ⋁_j (g_j ⊕ f_j)` —
/// the negation of Lemma 2.2's "no error" criterion — with the ∃∀ engine.
///
/// Detects exactly the same errors as [`crate::checks::output_exact`].
///
/// `max_refinements` bounds the CEGAR loop (each refinement adds one
/// cofactor copy of the miter to the abstraction).
///
/// # Errors
///
/// [`CheckError::BudgetExceeded`] if CEGAR does not converge;
/// [`CheckError::InterfaceMismatch`] on interface mismatches.
pub fn sat_output_exact(
    spec: &Circuit,
    partial: &PartialCircuit,
    _settings: &CheckSettings,
    max_refinements: usize,
) -> Result<CheckOutcome, CheckError> {
    validate_interface(spec, partial)?;
    let start = Instant::now();
    let host = partial.circuit();
    let mut b = Circuit::builder("oe_phi");
    let n = spec.inputs().len();
    let xs: Vec<SignalId> = (0..n).map(|i| b.input(&format!("x{i}"))).collect();
    let box_outputs = partial.box_outputs();
    let zs: Vec<SignalId> = (0..box_outputs.len()).map(|k| b.input(&format!("z{k}"))).collect();

    let mut spec_map: Vec<Option<SignalId>> = vec![None; spec.signal_count()];
    for (pos, &s) in spec.inputs().iter().enumerate() {
        spec_map[s.index()] = Some(xs[pos]);
    }
    append_circuit(&mut b, spec, &mut spec_map);

    let mut host_map: Vec<Option<SignalId>> = vec![None; host.signal_count()];
    for (pos, &s) in host.inputs().iter().enumerate() {
        host_map[s.index()] = Some(xs[pos]);
    }
    for (k, &s) in box_outputs.iter().enumerate() {
        host_map[s.index()] = Some(zs[k]);
    }
    append_circuit(&mut b, host, &mut host_map);

    let mut diffs = Vec::new();
    for (&(_, fs), &(_, gs)) in spec.outputs().iter().zip(host.outputs()) {
        let f = spec_map[fs.index()].expect("driven");
        let g = host_map[gs.index()].expect("driven or boxed");
        diffs.push(b.xor2(f, g));
    }
    let phi = b.tree(GateKind::Or, &diffs);
    b.output("phi", phi);
    let circuit = b.build().map_err(CheckError::Netlist)?;

    let existential: Vec<usize> = (0..n).collect();
    match exists_forall(&circuit, &existential, max_refinements) {
        Ok(ExistsForallResult::Witness(inputs)) => {
            let cex = Counterexample { inputs, output: None };
            crate::cex::validate_counterexample(spec, partial, &cex).map_err(|detail| {
                CheckError::CounterexampleRejected { method: Method::SatOutputExact, detail }
            })?;
            Ok(CheckOutcome {
                method: Method::SatOutputExact,
                verdict: Verdict::ErrorFound,
                counterexample: Some(cex),
                stats: ResourceStats { duration: start.elapsed(), ..Default::default() },
            })
        }
        Ok(ExistsForallResult::NoWitness) => Ok(CheckOutcome {
            method: Method::SatOutputExact,
            verdict: Verdict::NoErrorFound,
            counterexample: None,
            stats: ResourceStats { duration: start.elapsed(), ..Default::default() },
        }),
        Err(e) => Err(CheckError::BudgetExceeded(BudgetAbort::new(e.to_string()))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checks::{output_exact, symbolic_01x};
    use crate::samples;
    use crate::PartialCircuit;
    use bbec_netlist::generators;
    use bbec_netlist::mutate::Mutation;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn settings() -> CheckSettings {
        CheckSettings { dynamic_reordering: false, ..CheckSettings::default() }
    }

    #[test]
    fn dual_rail_matches_bdd_01x_on_samples() {
        for (spec, partial) in [
            samples::completable_pair(),
            samples::detected_by_01x(),
            samples::detected_only_by_local(),
            samples::detected_only_by_output_exact(),
        ] {
            let bdd = symbolic_01x(&spec, &partial, &settings()).unwrap();
            let sat = sat_dual_rail(&spec, &partial, &settings()).unwrap();
            assert_eq!(bdd.verdict, sat.verdict, "{}", partial.circuit().name());
        }
    }

    #[test]
    fn cegar_matches_bdd_output_exact_on_samples() {
        for (spec, partial) in [
            samples::completable_pair(),
            samples::detected_by_01x(),
            samples::detected_only_by_local(),
            samples::detected_only_by_output_exact(),
            samples::detected_only_by_input_exact(),
        ] {
            let bdd = output_exact(&spec, &partial, &settings()).unwrap();
            let sat = sat_output_exact(&spec, &partial, &settings(), 10_000).unwrap();
            assert_eq!(bdd.verdict, sat.verdict, "{}", partial.circuit().name());
        }
    }

    #[test]
    fn agreement_on_random_mutated_instances() {
        let mut rng = StdRng::seed_from_u64(77);
        let c = generators::magnitude_comparator(4);
        let roots: Vec<_> = c.outputs().iter().map(|&(_, s)| s).collect();
        let cone = c.fanin_cone_gates(&roots);
        for _ in 0..8 {
            let m = Mutation::random(&c, &cone, &mut rng).unwrap();
            let faulty = m.apply(&c).unwrap();
            let Ok(p) = PartialCircuit::random_black_boxes(&faulty, 0.15, 1, &mut rng) else {
                continue;
            };
            let bdd01x = symbolic_01x(&c, &p, &settings()).unwrap();
            let sat01x = sat_dual_rail(&c, &p, &settings()).unwrap();
            assert_eq!(bdd01x.verdict, sat01x.verdict, "01x: {}", m.describe(&c));
            let bddoe = output_exact(&c, &p, &settings()).unwrap();
            let satoe = sat_output_exact(&c, &p, &settings(), 10_000).unwrap();
            assert_eq!(bddoe.verdict, satoe.verdict, "oe: {}", m.describe(&c));
        }
    }

    #[test]
    fn dual_rail_witness_is_definite_mismatch() {
        let (spec, partial) = samples::detected_by_01x();
        let out = sat_dual_rail(&spec, &partial, &settings()).unwrap();
        let cex = out.counterexample.expect("witness");
        let tv: Vec<bbec_netlist::Tv> =
            cex.inputs.iter().map(|&v| bbec_netlist::Tv::from(v)).collect();
        let got = partial.circuit().eval_ternary(&tv).unwrap();
        let expect = spec.eval(&cex.inputs).unwrap();
        assert!(got.iter().zip(&expect).any(|(g, &e)| g.to_bool().is_some_and(|v| v != e)));
    }
}
