//! Fault localisation by black-box equivalence checking — the paper's
//! third application, packaged as an API: "If there is some assumption on
//! the location of errors […] then these regions of the design are cut off
//! and put into Black Boxes."
//!
//! Because the input-exact check is *exact* for a single black box
//! (Theorem 2.2), "the check passes after boxing region R" is a proof that
//! a drop-in replacement for R repairs the design — R is a genuine repair
//! site, not merely a heuristic suspect.

use crate::checks::input_exact;
use crate::partial::{convex_closure, PartialCircuit};
use crate::report::{CheckError, CheckSettings, Verdict};
use bbec_netlist::Circuit;

/// One confirmed repair site.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RepairSite {
    /// The boxed gate region (a convex set of gate indices in `faulty`).
    pub gates: Vec<u32>,
    /// Pins of the would-be replacement block.
    pub box_inputs: usize,
    pub box_outputs: usize,
}

/// Finds all single-gate repair sites: gates `g` of `faulty` such that
/// replacing just `g` (by *some* single-output function of its current
/// inputs) makes the implementation equivalent to `spec`.
///
/// `candidates` restricts the scan (pass all gate indices for a full scan —
/// cost is one input-exact check per candidate).
///
/// # Errors
///
/// Propagates check errors; budget aborts ([`CheckError::BudgetExceeded`])
/// on individual candidates are treated as "not confirmed" rather than
/// failing the scan.
pub fn locate_single_gate_repairs(
    spec: &Circuit,
    faulty: &Circuit,
    candidates: &[u32],
    settings: &CheckSettings,
) -> Result<Vec<RepairSite>, CheckError> {
    let mut sites = Vec::new();
    for &g in candidates {
        let Ok(partial) = PartialCircuit::black_box_gates(faulty, &[g]) else {
            continue; // unobservable gate: boxing it cannot repair anything
        };
        match input_exact(spec, &partial, settings) {
            Ok(outcome) if outcome.verdict == Verdict::NoErrorFound => {
                let b = &partial.boxes()[0];
                sites.push(RepairSite {
                    gates: vec![g],
                    box_inputs: b.inputs.len(),
                    box_outputs: b.outputs.len(),
                });
            }
            Ok(_) => {}
            Err(CheckError::BudgetExceeded(_)) => {}
            Err(e) => return Err(e),
        }
    }
    Ok(sites)
}

/// Tests one hypothesised region: returns `Some(site)` if boxing the convex
/// closure of `region` makes the design completable.
///
/// # Errors
///
/// Propagates check errors (including budget aborts — a hypothesis that
/// cannot be decided within budget is an error here, unlike in the scan).
pub fn confirm_region(
    spec: &Circuit,
    faulty: &Circuit,
    region: &[u32],
    settings: &CheckSettings,
) -> Result<Option<RepairSite>, CheckError> {
    let closed = convex_closure(faulty, region);
    let partial = PartialCircuit::black_box_gates(faulty, &closed)?;
    let outcome = input_exact(spec, &partial, settings)?;
    Ok((outcome.verdict == Verdict::NoErrorFound).then(|| {
        let b = &partial.boxes()[0];
        RepairSite { gates: closed, box_inputs: b.inputs.len(), box_outputs: b.outputs.len() }
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use bbec_netlist::generators;
    use bbec_netlist::mutate::{Mutation, MutationKind};

    fn settings() -> CheckSettings {
        CheckSettings { dynamic_reordering: false, ..CheckSettings::default() }
    }

    #[test]
    fn single_fault_site_is_found() {
        let spec = generators::magnitude_comparator(4);
        // First AND gate in an output cone: a type change there is a bug.
        let bug = spec
            .gates()
            .iter()
            .position(|g| g.kind == bbec_netlist::GateKind::And)
            .expect("comparator has ANDs") as u32;
        let faulty = Mutation { gate: bug, kind: MutationKind::TypeChange }.apply(&spec).unwrap();
        let all: Vec<u32> = (0..faulty.gates().len() as u32).collect();
        let sites = locate_single_gate_repairs(&spec, &faulty, &all, &settings()).unwrap();
        assert!(
            sites.iter().any(|s| s.gates == vec![bug]),
            "true fault site missing from {sites:?}"
        );
    }

    #[test]
    fn sites_are_genuine_repairs() {
        // Every reported site must truly admit a completion: cross-check
        // with the brute-force oracle where the box is small enough.
        let spec = generators::ripple_carry_adder(3);
        let bug = 4u32;
        let faulty =
            Mutation { gate: bug, kind: MutationKind::ToggleOutputInverter }.apply(&spec).unwrap();
        let all: Vec<u32> = (0..faulty.gates().len() as u32).collect();
        let sites = locate_single_gate_repairs(&spec, &faulty, &all, &settings()).unwrap();
        assert!(!sites.is_empty());
        for site in &sites {
            let partial = PartialCircuit::black_box_gates(&faulty, &site.gates).unwrap();
            if let Ok(exact) = crate::checks::exact_decomposition(&spec, &partial, &settings(), 20)
            {
                assert!(exact.is_completable(), "site {site:?} is not a real repair");
            }
        }
    }

    #[test]
    fn unrelated_gates_are_rejected() {
        // A fault in the carry chain cannot be repaired by replacing a gate
        // whose cone does not reach the failing outputs.
        let spec = generators::ripple_carry_adder(4);
        let last_or =
            spec.gates().iter().rposition(|g| g.kind == bbec_netlist::GateKind::Or).unwrap() as u32;
        let faulty =
            Mutation { gate: last_or, kind: MutationKind::TypeChange }.apply(&spec).unwrap();
        // Gate 0 (the first sum XOR) cannot repair the final carry.
        let sites = locate_single_gate_repairs(&spec, &faulty, &[0], &settings()).unwrap();
        assert!(sites.is_empty());
    }

    #[test]
    fn confirm_region_accepts_closure_of_true_site() {
        let spec = generators::magnitude_comparator(4);
        let bug = 9u32;
        let faulty = Mutation { gate: bug, kind: MutationKind::TypeChange }.apply(&spec).unwrap();
        let hit = confirm_region(&spec, &faulty, &[bug], &settings()).unwrap();
        assert!(hit.is_some());
        let site = hit.unwrap();
        assert!(site.gates.contains(&bug));
        // A wrong hypothesis fails (unless it happens to contain the bug).
        let miss = confirm_region(&spec, &faulty, &[0], &settings()).unwrap();
        assert!(miss.is_none() || convex_closure(&faulty, &[0]).contains(&bug));
    }
}
