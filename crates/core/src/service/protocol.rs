//! The wire protocol of `bbec serve`: one JSON object per line in, one
//! JSON object per line out.
//!
//! Parsing is **strict**: unknown fields are rejected (a typo'd knob must
//! not silently fall back to a default and cache under the wrong settings
//! key), types are checked, and a single over-long line is refused before
//! parsing. Every response — including every error response — is itself
//! schema-valid JSONL, so a driving process can always parse what it gets
//! back; [`validate_response_line`] is the executable schema.
//!
//! ## Requests
//!
//! ```text
//! {"type":"ping","id":"r1"}
//! {"type":"shutdown"}
//! {"type":"check","id":"r2","spec_path":"spec.blif","impl_path":"impl.blif"}
//! {"type":"check","id":"r3","spec_blif":"...","impl_blif":"...",
//!  "boxes":"per-signal","priority":5,"cache":false,
//!  "patterns":1000,"reorder":false,"sweep":false,
//!  "node_limit":4000000,"step_limit":0,"time_limit_ms":10000}
//! ```
//!
//! The circuit pair comes either from the filesystem (`spec_path` +
//! `impl_path`) or inline (`spec_blif` + `impl_blif`), always in BLIF with
//! undriven signals carved into black boxes (`boxes`: `"one"` box for all
//! undriven signals, or one box `"per-signal"`). A limit of `0` means
//! unbounded.
//!
//! ## Responses
//!
//! ```text
//! {"type":"pong","schema":1,"id":"r1"}
//! {"type":"bye","schema":1}
//! {"type":"error","schema":1,"id":"r2","detail":"..."}
//! {"type":"result","schema":1,"id":"r3","verdict":"error_found",
//!  "method":"0,1,X","cached":false,"cones":8,"cones_reused":7,
//!  "cones_rechecked":1,"budget_exceeded":false,"wall_ms":3,
//!  "apply_steps":412,"rungs":[...],"counterexample":{"inputs":[0,1],"output":2}}
//! ```
//!
//! `apply_steps` counts *fresh* BDD work only — a full cache hit reports
//! `0`, which the CI smoke test asserts.

use crate::ledger::RungRecord;
use crate::report::Counterexample;
use bbec_trace::json::{self, ObjectWriter, Value};

/// Version stamp written into every response line.
pub const SERVICE_SCHEMA_VERSION: u64 = 1;

/// Hard cap on one request line; longer lines are refused unparsed so a
/// runaway producer cannot balloon the intake thread.
pub const MAX_REQUEST_BYTES: usize = 1 << 20;

/// How the implementation's undriven signals are carved into black boxes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BoxCarve {
    /// One box drives every undriven signal (the paper's "one big box").
    One,
    /// One box per undriven signal (maximally split carve).
    PerSignal,
}

/// Where the circuit pair of a check request comes from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RequestSource {
    /// Read both sides from BLIF files on the service's filesystem.
    Paths { spec: String, implementation: String },
    /// Both sides inline as BLIF text (newlines JSON-escaped).
    Inline { spec: String, implementation: String },
}

/// Per-request overrides of the service's base [`crate::report::CheckSettings`].
/// `None` keeps the service default; a limit of `Some(0)` means unbounded.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SettingsOverrides {
    pub patterns: Option<usize>,
    pub reorder: Option<bool>,
    pub sweep: Option<bool>,
    pub node_limit: Option<u64>,
    pub step_limit: Option<u64>,
    pub time_limit_ms: Option<u64>,
}

/// A parsed `"type":"check"` request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckRequest {
    /// Client-chosen correlation id, echoed in the response.
    pub id: String,
    pub source: RequestSource,
    pub boxes: BoxCarve,
    /// Queue priority (higher pops first); default 0.
    pub priority: i64,
    /// Whether the result cache may serve and store this request.
    pub use_cache: bool,
    pub overrides: SettingsOverrides,
}

/// Any parsed request line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    Check(Box<CheckRequest>),
    Ping { id: String },
    Shutdown,
}

fn str_field(fields: &[(String, Value)], key: &str) -> Result<Option<String>, String> {
    match fields.iter().find(|(k, _)| k == key) {
        None => Ok(None),
        Some((_, Value::String(s))) => Ok(Some(s.clone())),
        Some(_) => Err(format!("'{key}' must be a string")),
    }
}

fn bool_field(fields: &[(String, Value)], key: &str) -> Result<Option<bool>, String> {
    match fields.iter().find(|(k, _)| k == key) {
        None => Ok(None),
        Some((_, Value::Bool(b))) => Ok(Some(*b)),
        Some(_) => Err(format!("'{key}' must be a boolean")),
    }
}

fn u64_field(fields: &[(String, Value)], key: &str) -> Result<Option<u64>, String> {
    match fields.iter().find(|(k, _)| k == key) {
        None => Ok(None),
        Some((_, Value::Number(n))) if *n >= 0.0 && n.fract() == 0.0 && *n <= 2f64.powi(53) => {
            Ok(Some(*n as u64))
        }
        Some(_) => Err(format!("'{key}' must be a non-negative integer")),
    }
}

fn i64_field(fields: &[(String, Value)], key: &str) -> Result<Option<i64>, String> {
    match fields.iter().find(|(k, _)| k == key) {
        None => Ok(None),
        Some((_, Value::Number(n))) if n.fract() == 0.0 && n.abs() <= 2f64.powi(53) => {
            Ok(Some(*n as i64))
        }
        Some(_) => Err(format!("'{key}' must be an integer")),
    }
}

const CHECK_KEYS: &[&str] = &[
    "type",
    "id",
    "spec_path",
    "impl_path",
    "spec_blif",
    "impl_blif",
    "boxes",
    "priority",
    "cache",
    "patterns",
    "reorder",
    "sweep",
    "node_limit",
    "step_limit",
    "time_limit_ms",
];

/// Parses one request line; every failure is a message fit for an `error`
/// response (never a panic).
///
/// # Errors
///
/// Oversized lines, invalid JSON, non-object lines, unknown `type`,
/// unknown or ill-typed fields, and inconsistent circuit sources are all
/// rejected with a one-line diagnostic.
pub fn parse_request(line: &str) -> Result<Request, String> {
    if line.len() > MAX_REQUEST_BYTES {
        return Err(format!(
            "oversized request: {} bytes exceeds the {} byte line limit",
            line.len(),
            MAX_REQUEST_BYTES
        ));
    }
    let v = json::parse(line).map_err(|e| format!("invalid JSON: {e}"))?;
    let Value::Object(fields) = v else {
        return Err("request must be a JSON object".to_string());
    };
    let ty = str_field(&fields, "type")?.ok_or("missing required key 'type'")?;
    match ty.as_str() {
        "ping" => {
            for (k, _) in &fields {
                if k != "type" && k != "id" {
                    return Err(format!("unknown field '{k}' in ping request"));
                }
            }
            Ok(Request::Ping { id: str_field(&fields, "id")?.unwrap_or_default() })
        }
        "shutdown" => {
            for (k, _) in &fields {
                if k != "type" {
                    return Err(format!("unknown field '{k}' in shutdown request"));
                }
            }
            Ok(Request::Shutdown)
        }
        "check" => parse_check(&fields),
        other => Err(format!("unknown request type '{other}'")),
    }
}

fn parse_check(fields: &[(String, Value)]) -> Result<Request, String> {
    for (k, _) in fields {
        if !CHECK_KEYS.contains(&k.as_str()) {
            return Err(format!("unknown field '{k}' in check request"));
        }
    }
    let id = str_field(fields, "id")?.ok_or("check request requires an 'id'")?;
    let spec_path = str_field(fields, "spec_path")?;
    let impl_path = str_field(fields, "impl_path")?;
    let spec_blif = str_field(fields, "spec_blif")?;
    let impl_blif = str_field(fields, "impl_blif")?;
    let source = match (spec_path, impl_path, spec_blif, impl_blif) {
        (Some(s), Some(i), None, None) => RequestSource::Paths { spec: s, implementation: i },
        (None, None, Some(s), Some(i)) => RequestSource::Inline { spec: s, implementation: i },
        _ => {
            return Err("check request requires exactly one circuit source: \
                 spec_path+impl_path or spec_blif+impl_blif"
                .to_string())
        }
    };
    let boxes = match str_field(fields, "boxes")?.as_deref() {
        None | Some("one") => BoxCarve::One,
        Some("per-signal") => BoxCarve::PerSignal,
        Some(other) => return Err(format!("'boxes' must be 'one' or 'per-signal', got '{other}'")),
    };
    let overrides = SettingsOverrides {
        patterns: u64_field(fields, "patterns")?.map(|v| v as usize),
        reorder: bool_field(fields, "reorder")?,
        sweep: bool_field(fields, "sweep")?,
        node_limit: u64_field(fields, "node_limit")?,
        step_limit: u64_field(fields, "step_limit")?,
        time_limit_ms: u64_field(fields, "time_limit_ms")?,
    };
    Ok(Request::Check(Box::new(CheckRequest {
        id,
        source,
        boxes,
        priority: i64_field(fields, "priority")?.unwrap_or(0),
        use_cache: bool_field(fields, "cache")?.unwrap_or(true),
        overrides,
    })))
}

/// One `"type":"result"` response line, ready to serialize.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckResponse {
    pub id: String,
    /// `"error_found"` / `"no_error_found"`.
    pub verdict: String,
    /// Paper column label of the deciding rung, when an error was found.
    pub method: Option<String>,
    /// Whether the whole response came from the result cache.
    pub cached: bool,
    /// Output cones in the shard plan (0 when phase A did not run).
    pub cones: usize,
    /// Cones whose cached per-cone report was reused.
    pub cones_reused: usize,
    /// Whether any rung ran out of budget (such runs are never cached).
    pub budget_exceeded: bool,
    pub wall_ms: u64,
    /// Fresh BDD apply steps charged by this request (0 on a full hit).
    pub apply_steps: u64,
    /// Per-rung breakdown, shaped exactly like ledger rung records.
    pub rungs: Vec<RungRecord>,
    pub counterexample: Option<Counterexample>,
}

impl CheckResponse {
    /// Serialises the response as one JSONL line (no trailing newline).
    pub fn to_json_line(&self) -> String {
        let mut w = ObjectWriter::new();
        w.str("type", "result");
        w.u64("schema", SERVICE_SCHEMA_VERSION);
        w.str("id", &self.id);
        w.str("verdict", &self.verdict);
        if let Some(m) = &self.method {
            w.str("method", m);
        }
        w.bool("cached", self.cached);
        w.u64("cones", self.cones as u64);
        w.u64("cones_reused", self.cones_reused as u64);
        w.u64("cones_rechecked", (self.cones - self.cones_reused) as u64);
        w.bool("budget_exceeded", self.budget_exceeded);
        w.u64("wall_ms", self.wall_ms);
        w.u64("apply_steps", self.apply_steps);
        let rungs: Vec<String> = self.rungs.iter().map(RungRecord::to_json).collect();
        w.raw("rungs", &format!("[{}]", rungs.join(",")));
        if let Some(cex) = &self.counterexample {
            let mut c = ObjectWriter::new();
            let bits: Vec<&str> = cex.inputs.iter().map(|&b| if b { "1" } else { "0" }).collect();
            c.raw("inputs", &format!("[{}]", bits.join(",")));
            if let Some(o) = cex.output {
                c.u64("output", o as u64);
            }
            w.raw("counterexample", &c.finish());
        }
        w.finish()
    }
}

/// An `error` response; `id` is omitted when the line never parsed far
/// enough to recover one.
pub fn error_line(id: Option<&str>, detail: &str) -> String {
    let mut w = ObjectWriter::new();
    w.str("type", "error");
    w.u64("schema", SERVICE_SCHEMA_VERSION);
    if let Some(id) = id {
        w.str("id", id);
    }
    w.str("detail", detail);
    w.finish()
}

/// The reply to a `ping`.
pub fn pong_line(id: &str) -> String {
    let mut w = ObjectWriter::new();
    w.str("type", "pong");
    w.u64("schema", SERVICE_SCHEMA_VERSION);
    w.str("id", id);
    w.finish()
}

/// The final line after a `shutdown` request.
pub fn bye_line() -> String {
    let mut w = ObjectWriter::new();
    w.str("type", "bye");
    w.u64("schema", SERVICE_SCHEMA_VERSION);
    w.finish()
}

fn require_str(v: &Value, key: &str) -> Result<(), String> {
    match v.get(key) {
        Some(Value::String(_)) => Ok(()),
        Some(_) => Err(format!("'{key}' must be a string")),
        None => Err(format!("missing required key '{key}'")),
    }
}

fn require_num(v: &Value, key: &str) -> Result<(), String> {
    match v.get(key) {
        Some(Value::Number(_)) => Ok(()),
        Some(_) => Err(format!("'{key}' must be a number")),
        None => Err(format!("missing required key '{key}'")),
    }
}

fn require_bool(v: &Value, key: &str) -> Result<(), String> {
    match v.get(key) {
        Some(Value::Bool(_)) => Ok(()),
        Some(_) => Err(format!("'{key}' must be a boolean")),
        None => Err(format!("missing required key '{key}'")),
    }
}

/// Validates one response line against the service schema — the same
/// executable-schema idea as [`crate::ledger::validate_ledger_line`]. The
/// CI smoke test and the protocol golden tests run every emitted line
/// through this.
///
/// # Errors
///
/// A one-line diagnostic naming the first violated constraint.
pub fn validate_response_line(line: &str) -> Result<(), String> {
    let v = json::parse(line).map_err(|e| format!("invalid JSON: {e}"))?;
    if !v.is_object() {
        return Err("response is not a JSON object".to_string());
    }
    require_num(&v, "schema")?;
    match v.get("type").and_then(Value::as_str) {
        Some("pong") => require_str(&v, "id"),
        Some("bye") => Ok(()),
        Some("error") => require_str(&v, "detail"),
        Some("result") => {
            require_str(&v, "id")?;
            match v.get("verdict").and_then(Value::as_str) {
                Some("error_found") | Some("no_error_found") => {}
                Some(other) => return Err(format!("unknown verdict '{other}'")),
                None => return Err("missing required key 'verdict'".to_string()),
            }
            for key in ["cached", "budget_exceeded"] {
                require_bool(&v, key)?;
            }
            for key in ["cones", "cones_reused", "cones_rechecked", "wall_ms", "apply_steps"] {
                require_num(&v, key)?;
            }
            let rungs = v
                .get("rungs")
                .ok_or("missing required key 'rungs'")?
                .as_array()
                .ok_or("'rungs' must be an array")?;
            for (i, rung) in rungs.iter().enumerate() {
                require_str(rung, "method").map_err(|e| format!("rung {i}: {e}"))?;
                for key in ["finished", "error_found"] {
                    require_bool(rung, key).map_err(|e| format!("rung {i}: {e}"))?;
                }
                for key in ["wall_ms", "apply_steps", "peak_nodes", "cache_hits", "cache_misses"] {
                    require_num(rung, key).map_err(|e| format!("rung {i}: {e}"))?;
                }
            }
            if let Some(cex) = v.get("counterexample") {
                let inputs = cex
                    .get("inputs")
                    .ok_or("counterexample missing 'inputs'")?
                    .as_array()
                    .ok_or("counterexample 'inputs' must be an array")?;
                for (i, bit) in inputs.iter().enumerate() {
                    match bit.as_f64() {
                        Some(0.0) | Some(1.0) => {}
                        _ => return Err(format!("counterexample input {i} must be 0 or 1")),
                    }
                }
            }
            Ok(())
        }
        Some(other) => Err(format!("unknown response type '{other}'")),
        None => Err("missing required key 'type'".to_string()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_minimal_check_request() {
        let r =
            parse_request(r#"{"type":"check","id":"a","spec_path":"s.blif","impl_path":"i.blif"}"#)
                .unwrap();
        let Request::Check(c) = r else { panic!("expected check") };
        assert_eq!(c.id, "a");
        assert_eq!(c.boxes, BoxCarve::One);
        assert_eq!(c.priority, 0);
        assert!(c.use_cache);
        assert_eq!(c.overrides, SettingsOverrides::default());
    }

    #[test]
    fn parses_every_knob() {
        let r = parse_request(
            r#"{"type":"check","id":"b","spec_blif":"x","impl_blif":"y","boxes":"per-signal",
                "priority":-3,"cache":false,"patterns":100,"reorder":true,"sweep":true,
                "node_limit":0,"step_limit":5,"time_limit_ms":1000}"#,
        )
        .unwrap();
        let Request::Check(c) = r else { panic!("expected check") };
        assert_eq!(c.boxes, BoxCarve::PerSignal);
        assert_eq!(c.priority, -3);
        assert!(!c.use_cache);
        assert_eq!(c.overrides.patterns, Some(100));
        assert_eq!(c.overrides.node_limit, Some(0), "0 = unbounded");
        assert_eq!(c.overrides.time_limit_ms, Some(1000));
    }

    #[test]
    fn rejects_unknown_fields_and_bad_types() {
        for line in [
            r#"{"type":"check","id":"x","spec_path":"s","impl_path":"i","turbo":true}"#,
            r#"{"type":"ping","id":"x","extra":1}"#,
            r#"{"type":"shutdown","now":true}"#,
            r#"{"type":"check","id":7,"spec_path":"s","impl_path":"i"}"#,
            r#"{"type":"check","id":"x","spec_path":"s","impl_path":"i","priority":1.5}"#,
            r#"{"type":"check","id":"x","spec_path":"s"}"#,
            r#"{"type":"check","id":"x","spec_path":"s","impl_path":"i","spec_blif":"z","impl_blif":"w"}"#,
            r#"{"type":"wat"}"#,
            r#"[1,2]"#,
            "not json",
        ] {
            assert!(parse_request(line).is_err(), "should reject: {line}");
        }
    }

    #[test]
    fn oversized_lines_are_refused_before_parsing() {
        let big = format!(r#"{{"type":"ping","id":"{}"}}"#, "x".repeat(MAX_REQUEST_BYTES));
        let err = parse_request(&big).unwrap_err();
        assert!(err.contains("oversized"), "{err}");
    }

    #[test]
    fn control_lines_validate() {
        validate_response_line(&pong_line("a")).unwrap();
        validate_response_line(&bye_line()).unwrap();
        validate_response_line(&error_line(None, "boom")).unwrap();
        validate_response_line(&error_line(Some("id"), "boom")).unwrap();
        assert!(validate_response_line(r#"{"type":"result","schema":1}"#).is_err());
        assert!(validate_response_line("garbage").is_err());
    }

    #[test]
    fn result_lines_round_trip_the_validator() {
        let resp = CheckResponse {
            id: "r".to_string(),
            verdict: "error_found".to_string(),
            method: Some("0,1,X".to_string()),
            cached: false,
            cones: 4,
            cones_reused: 3,
            budget_exceeded: false,
            wall_ms: 7,
            apply_steps: 99,
            rungs: vec![crate::ledger::RungRecord {
                method: "r.p.".to_string(),
                finished: true,
                error_found: false,
                wall_ms: 1,
                apply_steps: 0,
                peak_nodes: 0,
                cache_hits: 0,
                cache_misses: 0,
            }],
            counterexample: Some(Counterexample {
                inputs: vec![true, false, true],
                output: Some(2),
            }),
        };
        let line = resp.to_json_line();
        validate_response_line(&line).unwrap_or_else(|e| panic!("{e}\n{line}"));
        let v = json::parse(&line).unwrap();
        assert_eq!(v.get("cones_rechecked").and_then(Value::as_f64), Some(1.0));
        let cex = v.get("counterexample").unwrap();
        assert_eq!(cex.get("output").and_then(Value::as_f64), Some(2.0));
        assert_eq!(cex.get("inputs").and_then(Value::as_array).unwrap().len(), 3);
    }
}
