//! The service's structural result cache: full-instance results plus
//! per-cone ladder reports, both keyed on the ledger's structural hashes.
//!
//! ## Collision guard
//!
//! Keys are 64-bit [`crate::ledger::instance_hash`] values — small enough
//! that an adversarial (or merely unlucky) pair of instances could collide
//! and make the cache serve a verdict for the *wrong* circuit. Every entry
//! therefore also stores the independent
//! [`crate::ledger::instance_hash_alt`] of its instance; a primary-key hit
//! whose alternate hash disagrees is treated as a **miss**, the poisoned
//! entry is evicted, and a collision counter records the event. Colliding
//! on both families simultaneously is a ~2^-128 event.
//!
//! ## What is (not) cached
//!
//! Only *semantic* payloads: verdict, deciding method, per-rung records,
//! counterexample. Runs containing a budget-exceeded rung are never
//! inserted — a degraded verdict is not a fact about the instance, and a
//! later request with the same settings deserves a fresh attempt.
//!
//! Eviction is least-recently-used with a fixed entry budget per store
//! (full results and cone reports are budgeted separately, since one full
//! result can fan out into many cone entries).

use crate::checks::LadderReport;
use crate::ledger::RungRecord;
use crate::report::Counterexample;

/// The cached semantic payload of one full check.
#[derive(Debug, Clone, PartialEq)]
pub struct CachedResult {
    /// `"error_found"` / `"no_error_found"`.
    pub verdict: String,
    /// Paper column label of the deciding rung, when an error was found.
    pub method: Option<String>,
    /// Per-rung records of the original (cold) run.
    pub rungs: Vec<RungRecord>,
    pub counterexample: Option<Counterexample>,
    /// Shard-plan size of the original run (echoed on hits).
    pub cones: usize,
}

struct Entry<V> {
    alt: u64,
    stamp: u64,
    value: V,
}

/// One LRU store: primary key → (alternate-hash verifier, payload).
struct Store<V> {
    map: std::collections::HashMap<u64, Entry<V>>,
    capacity: usize,
    clock: u64,
    hits: u64,
    misses: u64,
    collisions: u64,
}

impl<V> Store<V> {
    fn new(capacity: usize) -> Self {
        Store {
            map: std::collections::HashMap::new(),
            capacity: capacity.max(1),
            clock: 0,
            hits: 0,
            misses: 0,
            collisions: 0,
        }
    }

    fn get(&mut self, key: u64, alt: u64) -> Option<&V> {
        self.clock += 1;
        match self.map.get_mut(&key) {
            Some(e) if e.alt == alt => {
                e.stamp = self.clock;
                self.hits += 1;
                Some(&self.map[&key].value)
            }
            Some(_) => {
                // Primary-hash collision: the stored entry belongs to a
                // different instance. Never serve it; drop it.
                self.map.remove(&key);
                self.collisions += 1;
                self.misses += 1;
                None
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    fn put(&mut self, key: u64, alt: u64, value: V) {
        self.clock += 1;
        if self.map.len() >= self.capacity && !self.map.contains_key(&key) {
            if let Some((&oldest, _)) = self.map.iter().min_by_key(|(_, e)| e.stamp) {
                self.map.remove(&oldest);
            }
        }
        self.map.insert(key, Entry { alt, stamp: self.clock, value });
    }
}

/// Aggregate cache counters, for `service.request` spans and tests.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    pub full_hits: u64,
    pub full_misses: u64,
    pub cone_hits: u64,
    pub cone_misses: u64,
    /// Primary-hash collisions detected (and evicted) by the alternate
    /// hash across both stores.
    pub collisions: u64,
    /// Entries currently resident (full + cone).
    pub entries: usize,
}

/// The two-level result cache of the check service.
pub struct ResultCache {
    full: Store<CachedResult>,
    cones: Store<LadderReport>,
}

impl ResultCache {
    /// A cache holding at most `entries` full results and `8 * entries`
    /// per-cone reports (a full result fans out into many cones).
    pub fn new(entries: usize) -> Self {
        ResultCache { full: Store::new(entries), cones: Store::new(entries.saturating_mul(8)) }
    }

    /// Looks up a full result; the entry's stored alternate hash must match
    /// `alt` or the hit is refused (collision guard).
    pub fn get_full(&mut self, key: u64, alt: u64) -> Option<CachedResult> {
        self.full.get(key, alt).cloned()
    }

    /// Stores a full result under `(key, alt)`.
    pub fn put_full(&mut self, key: u64, alt: u64, value: CachedResult) {
        self.full.put(key, alt, value);
    }

    /// Looks up a per-cone phase-A ladder report (same collision guard).
    pub fn get_cone(&mut self, key: u64, alt: u64) -> Option<LadderReport> {
        self.cones.get(key, alt).cloned()
    }

    /// Stores a per-cone phase-A ladder report under `(key, alt)`.
    pub fn put_cone(&mut self, key: u64, alt: u64, value: LadderReport) {
        self.cones.put(key, alt, value);
    }

    /// Current counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            full_hits: self.full.hits,
            full_misses: self.full.misses,
            cone_hits: self.cones.hits,
            cone_misses: self.cones.misses,
            collisions: self.full.collisions + self.cones.collisions,
            entries: self.full.map.len() + self.cones.map.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn payload(tag: &str) -> CachedResult {
        CachedResult {
            verdict: tag.to_string(),
            method: None,
            rungs: Vec::new(),
            counterexample: None,
            cones: 1,
        }
    }

    #[test]
    fn stores_and_serves_by_double_key() {
        let mut c = ResultCache::new(4);
        assert_eq!(c.get_full(1, 10), None);
        c.put_full(1, 10, payload("a"));
        assert_eq!(c.get_full(1, 10).unwrap().verdict, "a");
        let s = c.stats();
        assert_eq!((s.full_hits, s.full_misses, s.collisions), (1, 1, 0));
    }

    /// ISSUE satellite: a synthetic primary-hash collision — same primary
    /// key, different alternate hash — must read as a miss, evict the
    /// poisoned entry and bump the collision counter, never serve the
    /// other instance's verdict.
    #[test]
    fn primary_collision_is_refused_by_the_alternate_hash() {
        let mut c = ResultCache::new(4);
        c.put_full(42, 1000, payload("instance-A"));
        // A different instance colliding on the primary key:
        assert_eq!(c.get_full(42, 2000), None, "collision must not serve A's verdict");
        assert_eq!(c.stats().collisions, 1);
        // The poisoned entry is gone even for the original alt hash.
        assert_eq!(c.get_full(42, 1000), None, "colliding entry must be evicted");
        // The slot is reusable afterwards.
        c.put_full(42, 2000, payload("instance-B"));
        assert_eq!(c.get_full(42, 2000).unwrap().verdict, "instance-B");

        // Same guard on the cone store.
        let report = LadderReport { stages: Vec::new() };
        c.put_cone(7, 70, report.clone());
        assert_eq!(c.get_cone(7, 71), None);
        assert_eq!(c.stats().collisions, 2, "cone collisions count too");
    }

    #[test]
    fn lru_evicts_the_least_recently_used_entry() {
        let mut c = ResultCache::new(2);
        c.put_full(1, 1, payload("one"));
        c.put_full(2, 2, payload("two"));
        assert!(c.get_full(1, 1).is_some(), "touch 1 so 2 becomes LRU");
        c.put_full(3, 3, payload("three"));
        assert!(c.get_full(2, 2).is_none(), "2 was evicted");
        assert!(c.get_full(1, 1).is_some());
        assert!(c.get_full(3, 3).is_some());
    }

    #[test]
    fn capacity_is_per_store() {
        let mut c = ResultCache::new(1);
        c.put_full(1, 1, payload("f"));
        c.put_cone(1, 1, LadderReport { stages: Vec::new() });
        assert!(c.get_full(1, 1).is_some());
        assert!(c.get_cone(1, 1).is_some(), "cone store has its own budget");
    }
}
