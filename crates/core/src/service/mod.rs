//! `bbec serve` — a persistent check service with a structural result
//! cache and dirty-cone incremental re-checking.
//!
//! A long-lived process answering batched JSONL check requests (stdin or a
//! unix socket; see [`protocol`] for the wire format). Three layers make
//! repeated checks of evolving designs cheap:
//!
//! 1. **Full-result cache** — results are keyed on the ledger's structural
//!    [`crate::ledger::instance_hash`] combined with
//!    [`crate::ledger::settings_hash`], so re-submitting an unchanged
//!    instance (even renamed: the hash is structural) answers from memory
//!    with **zero** BDD work.
//! 2. **Dirty-cone incremental re-checking** — on a miss, the service
//!    reuses the [`crate::plan_shards`] cone-of-influence decomposition:
//!    each output cone is hashed individually, cones whose subcircuits are
//!    unchanged replay their cached per-cone ladder reports, and only the
//!    *dirty* cones re-run the per-output rungs. Cached and fresh cone
//!    reports are merged by the same deterministic
//!    [`crate::parallel`] merge as the parallel engine, so verdicts and
//!    counterexamples are bit-identical to a cold run.
//! 3. **Warm manager pool** — every check draws its BDD manager from a
//!    [`bbec_bdd::ManagerPool`], which resets (rather than reallocates)
//!    managers between requests.
//!
//! Degraded results (any budget-exceeded rung) are **never cached**: a
//! timeout is not a fact about the instance. Cache entries carry a second,
//! independent structural hash that is verified on every hit, so a 64-bit
//! key collision downgrades to a miss instead of serving a wrong verdict
//! (see [`cache`]).
//!
//! Observability: each request runs under a `service.request` span (with
//! `cached`/`cones`/`cones_reused` attributes) and each planned cone gets
//! a `service.cone` span with a `reused` flag — the incremental property
//! tests assert *which* cones re-ran straight from the trace. With
//! `--ledger`, every request appends a standard run record with tool
//! `"serve"`.

pub mod cache;
pub mod protocol;
pub mod queue;

use crate::checks::{CheckLadder, LadderReport, StageResult};
use crate::ledger::{self, RungRecord};
use crate::parallel::{self, ParallelChecker};
use crate::partial::{BlackBox, PartialCircuit};
use crate::report::{CheckError, CheckSettings, Method, Verdict};
use bbec_netlist::{blif, Circuit, SignalId};
use cache::{CacheStats, CachedResult, ResultCache};
use protocol::{BoxCarve, CheckRequest, CheckResponse, Request, RequestSource, SettingsOverrides};
use queue::JobQueue;
use std::io::{BufRead, Write};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Configuration of a [`Service`].
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Base check settings; per-request overrides start from these. The
    /// service installs its warm manager pool into them.
    pub settings: CheckSettings,
    /// Ladder stages, in execution order (default: the paper's five rungs).
    pub stages: Vec<Method>,
    /// CEGAR refinement budget for SAT output-exact stages.
    pub sat_refinement_budget: usize,
    /// Worker threads draining the job queue. `1` (the default) executes
    /// requests sequentially in intake order — fully deterministic output
    /// order, which the golden tests and CI rely on.
    pub max_jobs: usize,
    /// Full-result cache entries (per-cone entries get an 8x budget).
    pub cache_entries: usize,
    /// Bounded job-queue capacity; intake blocks when it is full.
    pub queue_capacity: usize,
    /// Warm BDD managers kept for reuse.
    pub pool_capacity: usize,
    /// Append one run record per check request to this ledger file.
    pub ledger: Option<std::path::PathBuf>,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        let CheckLadder { stages, sat_refinement_budget, .. } = CheckLadder::default();
        ServiceConfig {
            settings: CheckSettings::default(),
            stages,
            sat_refinement_budget,
            max_jobs: 1,
            cache_entries: 1024,
            queue_capacity: 256,
            pool_capacity: 4,
            ledger: None,
        }
    }
}

/// What one request line produced.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Reply {
    /// A response line to write and carry on.
    Line(String),
    /// The `bye` line of a shutdown request: write it, then stop intake.
    Bye(String),
}

/// Totals of one [`Service::serve`] session.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServeStats {
    /// Non-blank request lines read.
    pub requests: u64,
    /// Response lines written.
    pub responses: u64,
    /// Whether a `shutdown` request (rather than EOF) ended the session.
    pub shutdown: bool,
}

enum Job {
    /// A response computed at intake time (pong, parse error).
    Ready(String),
    /// A parsed request for a worker to execute.
    Exec(Box<CheckRequest>),
}

/// The persistent check service. Thread-safe: one instance may be shared
/// by the intake thread and every worker.
pub struct Service {
    config: ServiceConfig,
    pool: bbec_bdd::ManagerPool,
    cache: Mutex<ResultCache>,
    ledger_lock: Mutex<()>,
}

impl Service {
    /// Builds a service, installing a warm manager pool of
    /// [`ServiceConfig::pool_capacity`] into the base settings.
    pub fn new(mut config: ServiceConfig) -> Service {
        let pool = bbec_bdd::ManagerPool::new(config.pool_capacity);
        config.settings.pool = Some(pool.clone());
        Service {
            pool,
            cache: Mutex::new(ResultCache::new(config.cache_entries)),
            ledger_lock: Mutex::new(()),
            config,
        }
    }

    /// Warm-pool counters.
    pub fn pool_stats(&self) -> bbec_bdd::PoolStats {
        self.pool.stats()
    }

    /// Result-cache counters.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.lock().expect("cache lock poisoned").stats()
    }

    /// The effective base settings (pool installed).
    pub fn settings(&self) -> &CheckSettings {
        &self.config.settings
    }

    /// In-process check API — the same cache/incremental/pool path as the
    /// wire protocol, minus parsing. Used by the differential harness's
    /// served engine and the property tests.
    ///
    /// # Errors
    ///
    /// As [`CheckLadder::run`] ([`CheckError`]); budget-exceeded rungs are
    /// reported in the response, not raised.
    pub fn check_instance(
        &self,
        id: &str,
        spec: &Circuit,
        partial: &PartialCircuit,
        use_cache: bool,
    ) -> Result<CheckResponse, CheckError> {
        self.check_pair(id, spec, partial, &self.config.settings, use_cache)
    }

    /// Handles one raw request line, sequentially (parse + execute).
    pub fn handle_line(&self, line: &str) -> Reply {
        match protocol::parse_request(line) {
            Err(e) => Reply::Line(protocol::error_line(None, &e)),
            Ok(Request::Shutdown) => Reply::Bye(protocol::bye_line()),
            Ok(Request::Ping { id }) => Reply::Line(protocol::pong_line(&id)),
            Ok(Request::Check(req)) => Reply::Line(self.handle_check(&req)),
        }
    }

    /// Runs the service over a line stream until EOF or a `shutdown`
    /// request. With `max_jobs <= 1` requests execute sequentially in
    /// intake order; otherwise a bounded priority queue feeds `max_jobs`
    /// workers and responses interleave in completion order (each line
    /// written atomically).
    ///
    /// # Errors
    ///
    /// Propagates I/O failures reading requests or writing responses.
    pub fn serve<R: BufRead, W: Write + Send>(
        &self,
        reader: R,
        mut writer: W,
    ) -> std::io::Result<ServeStats> {
        let mut stats = ServeStats::default();
        if self.config.max_jobs <= 1 {
            for line in reader.lines() {
                let line = line?;
                if line.trim().is_empty() {
                    continue;
                }
                stats.requests += 1;
                let (text, bye) = match self.handle_line(&line) {
                    Reply::Line(l) => (l, false),
                    Reply::Bye(l) => (l, true),
                };
                writeln!(writer, "{text}")?;
                writer.flush()?;
                stats.responses += 1;
                if bye {
                    stats.shutdown = true;
                    break;
                }
            }
            return Ok(stats);
        }
        self.serve_concurrent(reader, &mut writer)
    }

    fn serve_concurrent<R: BufRead, W: Write + Send>(
        &self,
        reader: R,
        writer: &mut W,
    ) -> std::io::Result<ServeStats> {
        let queue = JobQueue::new(self.config.queue_capacity);
        let out = Mutex::new(&mut *writer);
        let responses = std::sync::atomic::AtomicU64::new(0);
        let write_error: Mutex<Option<std::io::Error>> = Mutex::new(None);
        let intake = std::thread::scope(|scope| {
            for _ in 0..self.config.max_jobs {
                scope.spawn(|| {
                    while let Some(job) = queue.pop() {
                        let line = match job {
                            Job::Ready(l) => l,
                            Job::Exec(req) => self.handle_check(&req),
                        };
                        let mut w = out.lock().expect("writer lock poisoned");
                        if let Err(e) = writeln!(w, "{line}").and_then(|()| w.flush()) {
                            *write_error.lock().expect("error lock poisoned") = Some(e);
                            queue.close();
                            break;
                        }
                        responses.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
                    }
                });
            }
            let intake = (|| -> std::io::Result<(u64, bool)> {
                let mut requests = 0;
                for line in reader.lines() {
                    let line = line?;
                    if line.trim().is_empty() {
                        continue;
                    }
                    requests += 1;
                    match protocol::parse_request(&line) {
                        // Control messages and parse errors jump the queue.
                        Ok(Request::Shutdown) => return Ok((requests, true)),
                        Ok(Request::Ping { id }) => {
                            queue.push(i64::MAX, Job::Ready(protocol::pong_line(&id)));
                        }
                        Ok(Request::Check(req)) => {
                            let priority = req.priority;
                            queue.push(priority, Job::Exec(req));
                        }
                        Err(e) => {
                            queue.push(i64::MAX, Job::Ready(protocol::error_line(None, &e)));
                        }
                    }
                }
                Ok((requests, false))
            })();
            queue.close();
            intake
        });
        if let Some(e) = write_error.into_inner().expect("error lock poisoned") {
            return Err(e);
        }
        let (requests, shutdown) = intake?;
        let mut stats = ServeStats { requests, responses: responses.into_inner(), shutdown };
        if shutdown {
            writeln!(writer, "{}", protocol::bye_line())?;
            writer.flush()?;
            stats.responses += 1;
        }
        Ok(stats)
    }

    /// Applies per-request overrides to the base settings (`0` = unbounded
    /// for the limits).
    fn effective_settings(&self, o: &SettingsOverrides) -> CheckSettings {
        let mut s = self.config.settings.clone();
        if let Some(p) = o.patterns {
            s.random_patterns = p;
        }
        if let Some(r) = o.reorder {
            s.dynamic_reordering = r;
        }
        if let Some(w) = o.sweep {
            s.sweep = w;
        }
        if let Some(n) = o.node_limit {
            s.node_limit = if n == 0 { None } else { Some(n as usize) };
        }
        if let Some(n) = o.step_limit {
            s.step_limit = if n == 0 { None } else { Some(n) };
        }
        if let Some(ms) = o.time_limit_ms {
            s.time_limit = if ms == 0 { None } else { Some(Duration::from_millis(ms)) };
        }
        s
    }

    fn handle_check(&self, req: &CheckRequest) -> String {
        let id = Some(req.id.as_str());
        let (spec_text, impl_text) = match &req.source {
            RequestSource::Paths { spec, implementation } => {
                let s = match std::fs::read_to_string(spec) {
                    Ok(t) => t,
                    Err(e) => {
                        return protocol::error_line(id, &format!("cannot read spec '{spec}': {e}"))
                    }
                };
                let i = match std::fs::read_to_string(implementation) {
                    Ok(t) => t,
                    Err(e) => {
                        return protocol::error_line(
                            id,
                            &format!("cannot read implementation '{implementation}': {e}"),
                        )
                    }
                };
                (s, i)
            }
            RequestSource::Inline { spec, implementation } => {
                (spec.clone(), implementation.clone())
            }
        };
        let spec = match blif::parse(&spec_text) {
            Ok(c) => c,
            Err(e) => return protocol::error_line(id, &format!("spec: {e}")),
        };
        let implementation = match blif::parse_allow_undriven(&impl_text) {
            Ok(c) => c,
            Err(e) => return protocol::error_line(id, &format!("implementation: {e}")),
        };
        let partial = match carve(implementation, req.boxes) {
            Ok(p) => p,
            Err(detail) => return protocol::error_line(id, &detail),
        };
        let settings = self.effective_settings(&req.overrides);
        match self.check_pair(&req.id, &spec, &partial, &settings, req.use_cache) {
            Ok(resp) => {
                self.append_ledger(&req.id, &settings, &spec, &partial, &resp);
                resp.to_json_line()
            }
            Err(e) => protocol::error_line(id, &e.to_string()),
        }
    }

    /// The full check path: request span, cache lookup, incremental
    /// dirty-cone run, cache fill.
    fn check_pair(
        &self,
        id: &str,
        spec: &Circuit,
        partial: &PartialCircuit,
        settings: &CheckSettings,
        use_cache: bool,
    ) -> Result<CheckResponse, CheckError> {
        let start = Instant::now();
        // One child tracer per request: concurrent workers record into
        // private buffers, grafted under the service tracer afterwards.
        let parent_tracer = settings.tracer.clone();
        let child = parent_tracer.child();
        let mut s = settings.clone();
        s.tracer = child.clone();
        let result = self.check_inner(id, spec, partial, &s, use_cache, start);
        parent_tracer.adopt(&child.finish());
        result
    }

    fn check_inner(
        &self,
        id: &str,
        spec: &Circuit,
        partial: &PartialCircuit,
        s: &CheckSettings,
        use_cache: bool,
        start: Instant,
    ) -> Result<CheckResponse, CheckError> {
        let span = s.tracer.span("service.request");
        span.set_attr("id", id);
        crate::checks::validate_interface(spec, partial)?;

        let shash = ledger::settings_hash(s, &self.config.stages);
        let ih = ledger::instance_hash(spec, partial);
        let ia = ledger::instance_hash_alt(spec, partial);
        let (full_key, full_alt) = (combine(ih, shash), combine(ia, shash));
        if use_cache {
            let hit = self.cache.lock().expect("cache lock poisoned").get_full(full_key, full_alt);
            if let Some(hit) = hit {
                span.set_attr("cached", true);
                span.set_attr("cones", hit.cones);
                span.set_attr("cones_reused", hit.cones);
                return Ok(CheckResponse {
                    id: id.to_string(),
                    verdict: hit.verdict,
                    method: hit.method,
                    cached: true,
                    cones: hit.cones,
                    cones_reused: hit.cones,
                    budget_exceeded: false,
                    wall_ms: start.elapsed().as_millis() as u64,
                    apply_steps: 0,
                    rungs: hit.rungs,
                    counterexample: hit.counterexample,
                });
            }
        }
        span.set_attr("cached", false);

        // The cold/incremental path mirrors ParallelChecker::run exactly
        // (validate → sweep → sharded phase A → joint phase B), so served
        // verdicts are bit-identical to the parallel engine's.
        let pre;
        let (cspec, cpartial) = if s.sweep {
            pre = crate::preprocess::preprocess(spec, partial, s)?;
            (&pre.spec, &pre.partial)
        } else {
            (spec, partial)
        };
        let phase_a: Vec<Method> = self
            .config
            .stages
            .iter()
            .copied()
            .filter(|&m| ParallelChecker::is_per_output(m))
            .collect();
        let phase_b: Vec<Method> = self
            .config
            .stages
            .iter()
            .copied()
            .filter(|&m| !ParallelChecker::is_per_output(m))
            .collect();
        let shash_a = ledger::settings_hash(s, &phase_a);

        let mut stages: Vec<StageResult> = Vec::new();
        let mut error_found = false;
        let mut fresh_steps: u64 = 0;
        let mut cones = 0;
        let mut cones_reused = 0;
        if !phase_a.is_empty() {
            let shards = parallel::plan_shards(cspec, cpartial)?;
            cones = shards.len();
            if !shards.is_empty() {
                // Per-cone keys: the shard subcircuits hashed with the same
                // structural hash family as full instances.
                let keys: Vec<(u64, u64)> = shards
                    .iter()
                    .map(|sh| {
                        let h = ledger::instance_hash(&sh.spec, &sh.partial);
                        let a = ledger::instance_hash_alt(&sh.spec, &sh.partial);
                        (combine(h, shash_a), combine(a, shash_a))
                    })
                    .collect();
                let mut reports: Vec<Option<LadderReport>> = vec![None; shards.len()];
                if use_cache {
                    let mut cache = self.cache.lock().expect("cache lock poisoned");
                    for (i, &(key, alt)) in keys.iter().enumerate() {
                        reports[i] = cache.get_cone(key, alt);
                    }
                }
                for (i, shard) in shards.iter().enumerate() {
                    let reused = reports[i].is_some();
                    let cone_span = s.tracer.span("service.cone");
                    cone_span.set_attr("cone", i);
                    cone_span.set_attr("outputs", shard.output_positions.len());
                    cone_span.set_attr("reused", reused);
                    if reused {
                        cones_reused += 1;
                        continue;
                    }
                    let ladder = CheckLadder {
                        settings: s.clone(),
                        stages: phase_a.clone(),
                        sat_refinement_budget: self.config.sat_refinement_budget,
                    };
                    let report = ladder.run(&shard.spec, &shard.partial)?;
                    fresh_steps += report.stages.iter().map(stage_steps).sum::<u64>();
                    if use_cache && !report.stages.iter().any(StageResult::is_budget_exceeded) {
                        self.cache.lock().expect("cache lock poisoned").put_cone(
                            keys[i].0,
                            keys[i].1,
                            report.clone(),
                        );
                    }
                    reports[i] = Some(report);
                }
                let reports: Vec<LadderReport> =
                    reports.into_iter().map(|r| r.expect("every shard planned")).collect();
                error_found = parallel::merge_shard_reports(
                    cspec,
                    cpartial,
                    &shards,
                    &reports,
                    &phase_a,
                    &mut stages,
                )?;
            }
        }
        if !error_found && !phase_b.is_empty() {
            let ladder = CheckLadder {
                settings: s.clone(),
                stages: phase_b,
                sat_refinement_budget: self.config.sat_refinement_budget,
            };
            let report = ladder.run(cspec, cpartial)?;
            fresh_steps += report.stages.iter().map(stage_steps).sum::<u64>();
            stages.extend(report.stages);
        }

        let report = LadderReport { stages };
        let budget_exceeded = !report.budget_exceeded().is_empty();
        let verdict = match report.verdict() {
            Verdict::ErrorFound => "error_found",
            Verdict::NoErrorFound => "no_error_found",
        }
        .to_string();
        let method = report.deciding_method().map(|m| m.label().to_string());
        let rungs: Vec<RungRecord> = report.stages.iter().map(RungRecord::from_stage).collect();
        let counterexample = report.counterexample().cloned();
        if use_cache && !budget_exceeded {
            self.cache.lock().expect("cache lock poisoned").put_full(
                full_key,
                full_alt,
                CachedResult {
                    verdict: verdict.clone(),
                    method: method.clone(),
                    rungs: rungs.clone(),
                    counterexample: counterexample.clone(),
                    cones,
                },
            );
        }
        span.set_attr("cones", cones);
        span.set_attr("cones_reused", cones_reused);
        Ok(CheckResponse {
            id: id.to_string(),
            verdict,
            method,
            cached: false,
            cones,
            cones_reused,
            budget_exceeded,
            wall_ms: start.elapsed().as_millis() as u64,
            apply_steps: fresh_steps,
            rungs,
            counterexample,
        })
    }

    fn append_ledger(
        &self,
        label: &str,
        settings: &CheckSettings,
        spec: &Circuit,
        partial: &PartialCircuit,
        resp: &CheckResponse,
    ) {
        let Some(path) = &self.config.ledger else { return };
        let record = ledger::RunRecord {
            instance_key: ledger::instance_key(spec, partial),
            settings_key: ledger::settings_key(settings, &self.config.stages),
            label: label.to_string(),
            tool: "serve".to_string(),
            verdict: resp.verdict.clone(),
            wall_ms: resp.wall_ms,
            jobs: 1,
            unix_ms: std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .map_or(0, |d| d.as_millis() as u64),
            host: bbec_trace::HostMeta::capture(),
            rungs: resp.rungs.clone(),
            extras: vec![
                ("cached".to_string(), u64::from(resp.cached)),
                ("cones".to_string(), resp.cones as u64),
                ("cones_reused".to_string(), resp.cones_reused as u64),
                ("apply_steps".to_string(), resp.apply_steps),
            ],
        };
        let _guard = self.ledger_lock.lock().expect("ledger lock poisoned");
        if let Err(e) = record.append(path) {
            eprintln!("bbec serve: ledger append failed: {e}");
        }
    }
}

/// Mixes a structural instance hash with a settings hash into one cache
/// key; applied to the primary and alternate families alike, preserving
/// their independence.
fn combine(instance: u64, settings: u64) -> u64 {
    (instance ^ settings.rotate_left(32)).wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

fn stage_steps(stage: &StageResult) -> u64 {
    match stage {
        StageResult::Finished(o) => o.stats.apply_steps,
        StageResult::BudgetExceeded { stats, .. } => stats.map_or(0, |st| st.apply_steps),
    }
}

/// Carves the implementation's undriven signals into black boxes, exactly
/// like the CLI: every box observes all primary inputs (the sound default
/// without pin annotations).
fn carve(implementation: Circuit, boxes: BoxCarve) -> Result<PartialCircuit, String> {
    let undriven = implementation.undriven_signals();
    if undriven.is_empty() {
        return Err(
            "the implementation has no undriven signals — nothing is black-boxed".to_string()
        );
    }
    let inputs: Vec<SignalId> = implementation.inputs().to_vec();
    let boxes: Vec<BlackBox> = match boxes {
        BoxCarve::PerSignal => undriven
            .iter()
            .enumerate()
            .map(|(i, &o)| BlackBox {
                name: format!("BB{}", i + 1),
                inputs: inputs.clone(),
                outputs: vec![o],
            })
            .collect(),
        BoxCarve::One => vec![BlackBox { name: "BB1".to_string(), inputs, outputs: undriven }],
    };
    PartialCircuit::new(implementation, boxes)
        .map_err(|e| format!("invalid partial implementation: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::samples;

    fn quick_service() -> Service {
        let settings = CheckSettings {
            dynamic_reordering: false,
            random_patterns: 100,
            ..CheckSettings::default()
        };
        Service::new(ServiceConfig { settings, ..ServiceConfig::default() })
    }

    #[test]
    fn full_cache_hit_answers_with_zero_fresh_steps() {
        let svc = quick_service();
        let (spec, partial) = samples::completable_pair();
        let cold = svc.check_instance("r1", &spec, &partial, true).unwrap();
        assert!(!cold.cached);
        assert!(cold.apply_steps > 0, "a cold run does BDD work");
        let warm = svc.check_instance("r2", &spec, &partial, true).unwrap();
        assert!(warm.cached);
        assert_eq!(warm.apply_steps, 0, "a full hit must do zero BDD work");
        assert_eq!(warm.verdict, cold.verdict);
        assert_eq!(warm.counterexample, cold.counterexample);
        assert_eq!(warm.rungs, cold.rungs, "cached rung records replay the cold run verbatim");
        assert_eq!(svc.cache_stats().full_hits, 1);
        assert!(svc.pool_stats().recycled > 0, "managers must be recycled, not dropped");
    }

    #[test]
    fn served_verdicts_match_the_parallel_engine() {
        let svc = quick_service();
        for (spec, partial) in [
            samples::completable_pair(),
            samples::detected_only_by_local(),
            samples::detected_only_by_input_exact(),
        ] {
            let served = svc.check_instance("x", &spec, &partial, true).unwrap();
            let reference =
                ParallelChecker::new(svc.settings().clone(), 1).run(&spec, &partial).unwrap();
            let want = match reference.verdict() {
                Verdict::ErrorFound => "error_found",
                Verdict::NoErrorFound => "no_error_found",
            };
            assert_eq!(served.verdict, want);
            assert_eq!(served.counterexample.as_ref(), reference.counterexample());
            assert_eq!(served.method.as_deref(), reference.deciding_method().map(Method::label));
        }
    }

    #[test]
    fn uncached_requests_bypass_the_cache_entirely() {
        let svc = quick_service();
        let (spec, partial) = samples::completable_pair();
        let a = svc.check_instance("a", &spec, &partial, false).unwrap();
        let b = svc.check_instance("b", &spec, &partial, false).unwrap();
        assert!(!a.cached && !b.cached);
        assert_eq!(a.apply_steps, b.apply_steps, "identical cold runs");
        let s = svc.cache_stats();
        assert_eq!((s.full_hits, s.cone_hits, s.entries), (0, 0, 0));
    }

    #[test]
    fn sequential_serve_speaks_the_protocol() {
        let svc = quick_service();
        let input = "\n{\"type\":\"ping\",\"id\":\"p\"}\n{\"type\":\"nope\"}\n{\"type\":\"shutdown\"}\n{\"type\":\"ping\",\"id\":\"after\"}\n";
        let mut out = Vec::new();
        let stats = svc.serve(input.as_bytes(), &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3, "ping, error, bye — nothing after shutdown:\n{text}");
        for line in &lines {
            protocol::validate_response_line(line).unwrap_or_else(|e| panic!("{e}: {line}"));
        }
        assert!(lines[0].contains("\"pong\""));
        assert!(lines[1].contains("\"error\""));
        assert!(lines[2].contains("\"bye\""));
        assert_eq!(stats, ServeStats { requests: 3, responses: 3, shutdown: true });
    }

    #[test]
    fn concurrent_serve_answers_every_request() {
        let settings = CheckSettings {
            dynamic_reordering: false,
            random_patterns: 50,
            ..CheckSettings::default()
        };
        let svc = Service::new(ServiceConfig { settings, max_jobs: 3, ..ServiceConfig::default() });
        let mut input = String::new();
        for i in 0..6 {
            input.push_str(&format!("{{\"type\":\"ping\",\"id\":\"p{i}\"}}\n"));
        }
        input.push_str("{\"type\":\"shutdown\"}\n");
        let mut out = Vec::new();
        let stats = svc.serve(input.as_bytes(), &mut out).unwrap();
        assert!(stats.shutdown);
        assert_eq!(stats.responses, 7, "six pongs and a bye");
        let text = String::from_utf8(out).unwrap();
        for line in text.lines() {
            protocol::validate_response_line(line).unwrap_or_else(|e| panic!("{e}: {line}"));
        }
        for i in 0..6 {
            assert!(text.contains(&format!("\"id\":\"p{i}\"")), "pong p{i} missing:\n{text}");
        }
        assert!(text.lines().last().unwrap().contains("\"bye\""));
    }

    #[test]
    fn inline_blif_checks_end_to_end() {
        let svc = quick_service();
        // Spec: f = (a & b) | c; implementation leaves ab undriven (boxed).
        let spec = ".model spec\\n.inputs a b c\\n.outputs f\\n.names a b ab\\n11 1\\n.names ab c f\\n1- 1\\n-1 1\\n.end";
        let imp = ".model imp\\n.inputs a b c\\n.outputs f\\n.names ab c f\\n1- 1\\n-1 1\\n.end";
        let line = format!(
            "{{\"type\":\"check\",\"id\":\"inline\",\"spec_blif\":\"{spec}\",\"impl_blif\":\"{imp}\"}}"
        );
        let Reply::Line(resp) = svc.handle_line(&line) else { panic!("expected a line") };
        protocol::validate_response_line(&resp).unwrap_or_else(|e| panic!("{e}: {resp}"));
        assert!(resp.contains("\"verdict\":\"no_error_found\""), "{resp}");
    }
}
