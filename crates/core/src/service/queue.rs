//! Bounded priority job queue for the check service.
//!
//! A classic admission-control queue: producers block while the queue is
//! at capacity (back-pressure on the intake thread instead of unbounded
//! memory growth), consumers block while it is empty, and closing wakes
//! everyone up. Jobs pop highest-priority first; within one priority the
//! order is strictly FIFO (a monotone sequence number breaks ties), so a
//! single-worker service with uniform priorities is fully deterministic.

use std::collections::BinaryHeap;
use std::sync::{Condvar, Mutex};

struct Job<T> {
    priority: i64,
    seq: u64,
    item: T,
}

impl<T> PartialEq for Job<T> {
    fn eq(&self, other: &Self) -> bool {
        self.priority == other.priority && self.seq == other.seq
    }
}
impl<T> Eq for Job<T> {}
impl<T> PartialOrd for Job<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for Job<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Max-heap: higher priority first, then lower sequence (FIFO).
        self.priority.cmp(&other.priority).then(other.seq.cmp(&self.seq))
    }
}

struct State<T> {
    heap: BinaryHeap<Job<T>>,
    next_seq: u64,
    closed: bool,
}

/// A bounded, closeable priority queue (higher priority pops first; FIFO
/// within a priority).
pub struct JobQueue<T> {
    state: Mutex<State<T>>,
    capacity: usize,
    pop_ready: Condvar,
    push_ready: Condvar,
}

impl<T> JobQueue<T> {
    /// Creates a queue admitting at most `capacity` pending jobs
    /// (`capacity` is clamped to at least 1).
    pub fn new(capacity: usize) -> Self {
        JobQueue {
            state: Mutex::new(State { heap: BinaryHeap::new(), next_seq: 0, closed: false }),
            capacity: capacity.max(1),
            pop_ready: Condvar::new(),
            push_ready: Condvar::new(),
        }
    }

    /// Enqueues a job, blocking while the queue is full. Returns `false`
    /// (dropping the job) when the queue has been closed.
    pub fn push(&self, priority: i64, item: T) -> bool {
        let mut state = self.state.lock().expect("queue lock poisoned");
        while state.heap.len() >= self.capacity && !state.closed {
            state = self.push_ready.wait(state).expect("queue lock poisoned");
        }
        if state.closed {
            return false;
        }
        let seq = state.next_seq;
        state.next_seq += 1;
        state.heap.push(Job { priority, seq, item });
        self.pop_ready.notify_one();
        true
    }

    /// Dequeues the highest-priority job, blocking while the queue is
    /// empty. Returns `None` once the queue is closed *and* drained.
    pub fn pop(&self) -> Option<T> {
        let mut state = self.state.lock().expect("queue lock poisoned");
        loop {
            if let Some(job) = state.heap.pop() {
                self.push_ready.notify_one();
                return Some(job.item);
            }
            if state.closed {
                return None;
            }
            state = self.pop_ready.wait(state).expect("queue lock poisoned");
        }
    }

    /// Closes the queue: pending jobs still drain, new pushes are refused,
    /// and every blocked producer/consumer wakes up.
    pub fn close(&self) {
        let mut state = self.state.lock().expect("queue lock poisoned");
        state.closed = true;
        drop(state);
        self.pop_ready.notify_all();
        self.push_ready.notify_all();
    }

    /// Number of jobs currently waiting.
    pub fn len(&self) -> usize {
        self.state.lock().expect("queue lock poisoned").heap.len()
    }

    /// Whether no jobs are waiting.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_by_priority_then_fifo() {
        let q = JobQueue::new(16);
        q.push(0, "a");
        q.push(5, "urgent");
        q.push(0, "b");
        q.push(5, "urgent2");
        q.close();
        assert_eq!(q.pop(), Some("urgent"));
        assert_eq!(q.pop(), Some("urgent2"));
        assert_eq!(q.pop(), Some("a"));
        assert_eq!(q.pop(), Some("b"));
        assert_eq!(q.pop(), None, "closed and drained");
    }

    #[test]
    fn capacity_blocks_until_a_pop_frees_a_slot() {
        let q = std::sync::Arc::new(JobQueue::new(1));
        q.push(0, 1u32);
        let q2 = q.clone();
        let producer = std::thread::spawn(move || q2.push(0, 2u32));
        // The producer must be blocked; a pop unblocks it.
        std::thread::sleep(std::time::Duration::from_millis(20));
        assert_eq!(q.pop(), Some(1));
        assert!(producer.join().unwrap(), "producer admitted after the pop");
        assert_eq!(q.pop(), Some(2));
    }

    #[test]
    fn close_refuses_new_pushes_and_wakes_consumers() {
        let q = std::sync::Arc::new(JobQueue::new(4));
        let q2 = q.clone();
        let consumer = std::thread::spawn(move || q2.pop());
        std::thread::sleep(std::time::Duration::from_millis(20));
        q.close();
        assert_eq!(consumer.join().unwrap(), None, "blocked consumer wakes on close");
        assert!(!q.push(0, 9u32), "closed queue refuses jobs");
        assert!(q.is_empty());
    }
}
