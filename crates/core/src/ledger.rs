//! The cross-run ledger: append-only JSONL records of check runs, keyed by
//! a structural instance hash, for longitudinal regression analysis.
//!
//! A trace file describes *one* run in depth; the ledger describes *many*
//! runs shallowly — one line per run, carrying the verdict, per-rung
//! wall/step/peak-node figures, cache hit rates and host provenance. The
//! CLI appends a record per `bbec check --ledger PATH` invocation and the
//! `bbec report` subcommand aggregates, diffs and regression-gates the
//! accumulated file.
//!
//! Two keys identify a line:
//!
//! * [`instance_key`] — an FNV-1a hash over the *structure* of the
//!   specification, the implementation and its black-box carve (gate
//!   kinds, wiring and box pin signatures by signal index; never names),
//!   so re-parsing a renamed netlist keys to the same instance;
//! * [`settings_key`] — a hash of the verdict-relevant settings (ladder
//!   stages, limits, seed, sweep, cache size), so runs are only compared
//!   like-for-like.
//!
//! Ledger files are **not** trace streams: they are multi-run and
//! append-only, so the trace schema's meta-header/monotone-`seq` stream
//! invariants do not apply. They get their own per-line validation
//! ([`validate_ledger_line`]) with the same zero-dependency JSON core.

use crate::checks::{LadderReport, StageResult};
use crate::partial::PartialCircuit;
use crate::report::{CheckSettings, Method, Verdict};
use bbec_netlist::Circuit;
use bbec_trace::json::{self, ObjectWriter, Value};
use bbec_trace::HostMeta;
use std::io::Write;
use std::path::Path;

/// Version stamp written into every ledger line.
pub const LEDGER_SCHEMA_VERSION: u64 = 1;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x1000_0000_01b3;
/// Offset basis of the *alternate* hash family (the primary basis with its
/// halves swapped): same byte walk, decorrelated state trajectory. The
/// service result cache stores both hashes and verifies the alternate one
/// on every primary hit, so a 64-bit collision downgrades to a miss
/// instead of serving a wrong cached verdict.
const FNV_ALT_OFFSET: u64 = 0x8422_2325_cbf2_9ce4;

struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(FNV_OFFSET)
    }

    fn with_basis(basis: u64) -> Self {
        Fnv(basis)
    }

    fn bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
    }

    fn u64(&mut self, v: u64) {
        self.bytes(&v.to_le_bytes());
    }

    fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }
}

fn hash_circuit(h: &mut Fnv, circuit: &Circuit) {
    h.usize(circuit.inputs().len());
    h.usize(circuit.outputs().len());
    h.usize(circuit.gates().len());
    for &s in circuit.inputs() {
        h.usize(s.index());
    }
    for gate in circuit.gates() {
        h.bytes(gate.kind.name().as_bytes());
        h.usize(gate.inputs.len());
        for &s in &gate.inputs {
            h.usize(s.index());
        }
        h.usize(gate.output.index());
    }
    for &(_, root) in circuit.outputs() {
        h.usize(root.index());
    }
}

fn instance_material(h: &mut Fnv, spec: &Circuit, partial: &PartialCircuit) {
    hash_circuit(h, spec);
    hash_circuit(h, partial.circuit());
    h.usize(partial.boxes().len());
    for b in partial.boxes() {
        h.usize(b.inputs.len());
        for &s in &b.inputs {
            h.usize(s.index());
        }
        h.usize(b.outputs.len());
        for &s in &b.outputs {
            h.usize(s.index());
        }
    }
}

/// Finalizing avalanche (splitmix64) applied to the alternate hash so its
/// low bits differ from the primary's even on correlated inputs.
fn avalanche(mut x: u64) -> u64 {
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Primary structural instance hash as a raw `u64` ([`instance_key`] is
/// its hex rendering). The service result cache keys on this value.
pub fn instance_hash(spec: &Circuit, partial: &PartialCircuit) -> u64 {
    let mut h = Fnv::new();
    instance_material(&mut h, spec, partial);
    h.0
}

/// Alternate structural instance hash over the *same* material as
/// [`instance_hash`], from a different offset basis with a finalizing
/// avalanche — independent enough that two instances colliding on the
/// primary hash almost surely separate here. Cache entries store both and
/// verify this one on every hit (collision guard).
pub fn instance_hash_alt(spec: &Circuit, partial: &PartialCircuit) -> u64 {
    let mut h = Fnv::with_basis(FNV_ALT_OFFSET);
    instance_material(&mut h, spec, partial);
    avalanche(h.0)
}

/// Structural hash of a (spec, implementation, carve) triple: gate kinds
/// and wiring by signal index, black-box pin signatures by signal index,
/// never any names — renaming every wire keys to the same instance.
pub fn instance_key(spec: &Circuit, partial: &PartialCircuit) -> String {
    format!("{:016x}", instance_hash(spec, partial))
}

/// Raw `u64` form of [`settings_key`].
pub fn settings_hash(settings: &CheckSettings, stages: &[Method]) -> u64 {
    let mut h = Fnv::new();
    h.u64(u64::from(settings.dynamic_reordering));
    h.usize(settings.reorder_threshold);
    h.usize(settings.random_patterns);
    h.u64(settings.seed);
    h.u64(settings.node_limit.map_or(u64::MAX, |v| v as u64));
    h.u64(settings.step_limit.unwrap_or(u64::MAX));
    h.u64(settings.time_limit.map_or(u64::MAX, |d| d.as_millis() as u64));
    h.u64(u64::from(settings.sweep));
    h.u64(u64::from(settings.cache_bits));
    h.usize(stages.len());
    for m in stages {
        h.bytes(m.label().as_bytes());
    }
    h.0
}

/// Hash of the verdict-relevant settings plus the stage list, so ledger
/// comparisons only pair runs with like configurations. Observability
/// settings (tracer, progress) and the warm manager pool deliberately do
/// not participate.
pub fn settings_key(settings: &CheckSettings, stages: &[Method]) -> String {
    format!("{:016x}", settings_hash(settings, stages))
}

/// Per-rung slice of a [`RunRecord`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RungRecord {
    /// Paper column label of the method (`r.p.`, `0,1,X`, `loc.`, …).
    pub method: String,
    /// Whether the rung ran to completion (false = budget exceeded).
    pub finished: bool,
    /// Whether the rung reported an error (always false when unfinished).
    pub error_found: bool,
    /// Wall-clock time of the rung in milliseconds.
    pub wall_ms: u64,
    /// Apply steps charged during the rung.
    pub apply_steps: u64,
    /// Peak additional live BDD nodes during the rung.
    pub peak_nodes: u64,
    /// Computed-table hits during the rung.
    pub cache_hits: u64,
    /// Computed-table misses during the rung.
    pub cache_misses: u64,
}

impl RungRecord {
    pub(crate) fn from_stage(stage: &StageResult) -> RungRecord {
        let (finished, error_found, stats) = match stage {
            StageResult::Finished(o) => (true, o.is_error(), Some(o.stats)),
            StageResult::BudgetExceeded { stats, .. } => (false, false, *stats),
        };
        let stats = stats.unwrap_or_default();
        RungRecord {
            method: stage.method().label().to_string(),
            finished,
            error_found,
            wall_ms: stage.elapsed().as_millis() as u64,
            apply_steps: stats.apply_steps,
            peak_nodes: stats.peak_check_nodes as u64,
            cache_hits: stats.cache_hits,
            cache_misses: stats.cache_misses,
        }
    }

    pub(crate) fn to_json(&self) -> String {
        let mut w = ObjectWriter::new();
        w.str("method", &self.method);
        w.bool("finished", self.finished);
        w.bool("error_found", self.error_found);
        w.u64("wall_ms", self.wall_ms);
        w.u64("apply_steps", self.apply_steps);
        w.u64("peak_nodes", self.peak_nodes);
        w.u64("cache_hits", self.cache_hits);
        w.u64("cache_misses", self.cache_misses);
        w.finish()
    }
}

/// One ledger line: the durable summary of one check run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunRecord {
    /// Structural instance hash ([`instance_key`]).
    pub instance_key: String,
    /// Settings hash ([`settings_key`]).
    pub settings_key: String,
    /// Display label for humans (e.g. the netlist file stem); never used
    /// for matching.
    pub label: String,
    /// Producing tool (`check`, `fuzz`, …).
    pub tool: String,
    /// Overall verdict (`error_found` / `no_error_found`).
    pub verdict: String,
    /// Wall-clock time of the whole run in milliseconds.
    pub wall_ms: u64,
    /// Worker threads used for the sharded phase.
    pub jobs: u64,
    /// Unix timestamp (milliseconds) when the record was written.
    pub unix_ms: u64,
    /// Host provenance (parallelism, OS, architecture).
    pub host: HostMeta,
    /// Per-rung breakdown, in execution order.
    pub rungs: Vec<RungRecord>,
    /// Tool-specific extra counters (e.g. fuzz throughput), serialized as
    /// additional top-level numeric keys. The schema validator tolerates
    /// unknown keys, so extras never break older readers.
    pub extras: Vec<(String, u64)>,
}

impl RunRecord {
    /// Builds a record from a finished ladder run.
    pub fn from_ladder(
        instance_key: String,
        settings_key: String,
        label: &str,
        report: &LadderReport,
        wall_ms: u64,
        jobs: u64,
    ) -> RunRecord {
        RunRecord {
            instance_key,
            settings_key,
            label: label.to_string(),
            tool: "check".to_string(),
            verdict: match report.verdict() {
                Verdict::ErrorFound => "error_found".to_string(),
                Verdict::NoErrorFound => "no_error_found".to_string(),
            },
            wall_ms,
            jobs,
            unix_ms: std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .map_or(0, |d| d.as_millis() as u64),
            host: HostMeta::capture(),
            rungs: report.stages.iter().map(RungRecord::from_stage).collect(),
            extras: Vec::new(),
        }
    }

    /// Serialises the record as one JSONL line (no trailing newline).
    pub fn to_json_line(&self) -> String {
        let mut w = ObjectWriter::new();
        w.str("type", "run");
        w.u64("schema", LEDGER_SCHEMA_VERSION);
        w.str("instance_key", &self.instance_key);
        w.str("settings_key", &self.settings_key);
        w.str("label", &self.label);
        w.str("tool", &self.tool);
        w.str("verdict", &self.verdict);
        w.u64("wall_ms", self.wall_ms);
        w.u64("jobs", self.jobs);
        w.u64("unix_ms", self.unix_ms);
        w.u64("host_parallelism", self.host.parallelism);
        w.str("os", self.host.os);
        w.str("arch", self.host.arch);
        for (key, value) in &self.extras {
            w.u64(key, *value);
        }
        let rungs: Vec<String> = self.rungs.iter().map(RungRecord::to_json).collect();
        w.raw("rungs", &format!("[{}]", rungs.join(",")));
        w.finish()
    }

    /// Appends the record to the ledger at `path` (created if absent).
    ///
    /// # Errors
    ///
    /// Propagates I/O failures opening or writing the file.
    pub fn append(&self, path: &Path) -> std::io::Result<()> {
        let mut file = std::fs::OpenOptions::new().create(true).append(true).open(path)?;
        file.write_all(self.to_json_line().as_bytes())?;
        file.write_all(b"\n")?;
        file.flush()
    }
}

fn require_str(v: &Value, key: &str) -> Result<(), String> {
    match v.get(key) {
        Some(Value::String(_)) => Ok(()),
        Some(_) => Err(format!("'{key}' must be a string")),
        None => Err(format!("missing required key '{key}'")),
    }
}

fn require_num(v: &Value, key: &str) -> Result<(), String> {
    match v.get(key) {
        Some(Value::Number(_)) => Ok(()),
        Some(_) => Err(format!("'{key}' must be a number")),
        None => Err(format!("missing required key '{key}'")),
    }
}

fn require_bool(v: &Value, key: &str) -> Result<(), String> {
    match v.get(key) {
        Some(Value::Bool(_)) => Ok(()),
        Some(_) => Err(format!("'{key}' must be a boolean")),
        None => Err(format!("missing required key '{key}'")),
    }
}

/// Validates one ledger line against the run-record schema.
pub fn validate_ledger_line(line: &str) -> Result<(), String> {
    let v = json::parse(line).map_err(|e| format!("invalid JSON: {e}"))?;
    if !v.is_object() {
        return Err("line is not a JSON object".to_string());
    }
    match v.get("type").and_then(Value::as_str) {
        Some("run") => {}
        Some(other) => return Err(format!("unknown ledger record type '{other}'")),
        None => return Err("missing required key 'type'".to_string()),
    }
    require_num(&v, "schema")?;
    for key in ["instance_key", "settings_key", "label", "tool", "verdict", "os", "arch"] {
        require_str(&v, key)?;
    }
    for key in ["wall_ms", "jobs", "unix_ms", "host_parallelism"] {
        require_num(&v, key)?;
    }
    let rungs = v
        .get("rungs")
        .ok_or("missing required key 'rungs'")?
        .as_array()
        .ok_or("'rungs' must be an array")?;
    for (i, rung) in rungs.iter().enumerate() {
        if !rung.is_object() {
            return Err(format!("rung {i} must be an object"));
        }
        require_str(rung, "method").map_err(|e| format!("rung {i}: {e}"))?;
        for key in ["finished", "error_found"] {
            require_bool(rung, key).map_err(|e| format!("rung {i}: {e}"))?;
        }
        for key in ["wall_ms", "apply_steps", "peak_nodes", "cache_hits", "cache_misses"] {
            require_num(rung, key).map_err(|e| format!("rung {i}: {e}"))?;
        }
    }
    Ok(())
}

/// Validates a whole ledger file (blank lines allowed, records are
/// independent — there is no stream header). Returns the record count.
pub fn validate_ledger(input: &str) -> Result<usize, String> {
    let mut n = 0;
    for (i, line) in input.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        validate_ledger_line(line).map_err(|e| format!("line {}: {e}", i + 1))?;
        n += 1;
    }
    Ok(n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checks::CheckLadder;
    use crate::samples;

    fn sample_report() -> (String, String, LadderReport) {
        let (spec, partial) = samples::completable_pair();
        let settings = CheckSettings {
            dynamic_reordering: false,
            random_patterns: 100,
            ..CheckSettings::default()
        };
        let ladder = CheckLadder::with_settings(settings.clone());
        let report = ladder.run(&spec, &partial).unwrap();
        let ikey = instance_key(&spec, &partial);
        let skey = settings_key(&settings, &ladder.stages);
        (ikey, skey, report)
    }

    #[test]
    fn instance_key_is_structural_and_name_independent() {
        let (spec, partial) = samples::completable_pair();
        let k1 = instance_key(&spec, &partial);
        let k2 = instance_key(&spec, &partial);
        assert_eq!(k1, k2, "deterministic");
        assert_eq!(k1.len(), 16);

        // A different carve of the same spec keys differently.
        let other = PartialCircuit::black_box_gates(&spec, &[1]).unwrap();
        assert_ne!(k1, instance_key(&spec, &other));

        // A different spec keys differently.
        let (spec2, partial2) = samples::detected_only_by_local();
        assert_ne!(k1, instance_key(&spec2, &partial2));
    }

    #[test]
    fn alternate_hash_is_independent_of_the_primary() {
        let (spec, partial) = samples::completable_pair();
        assert_eq!(
            instance_hash_alt(&spec, &partial),
            instance_hash_alt(&spec, &partial),
            "deterministic"
        );
        assert_ne!(
            instance_hash(&spec, &partial),
            instance_hash_alt(&spec, &partial),
            "the two hash families must not coincide"
        );
        // A structural change moves both hashes.
        let other = PartialCircuit::black_box_gates(&spec, &[1]).unwrap();
        assert_ne!(instance_hash(&spec, &partial), instance_hash(&spec, &other));
        assert_ne!(instance_hash_alt(&spec, &partial), instance_hash_alt(&spec, &other));
    }

    #[test]
    fn settings_key_tracks_verdict_relevant_knobs_only() {
        let base = CheckSettings::default();
        let stages = CheckLadder::default().stages;
        let k = settings_key(&base, &stages);
        assert_eq!(k, settings_key(&base, &stages), "deterministic");

        let mut tighter = base.clone();
        tighter.step_limit = Some(1000);
        assert_ne!(k, settings_key(&tighter, &stages));

        // Observability does not perturb the key.
        let mut traced = base.clone();
        traced.tracer = bbec_trace::Tracer::new();
        traced.progress = bbec_trace::Progress::new(
            bbec_trace::Tracer::disabled(),
            std::time::Duration::from_millis(1),
        );
        assert_eq!(k, settings_key(&traced, &stages));
    }

    #[test]
    fn run_record_round_trips_and_validates() {
        let (ikey, skey, report) = sample_report();
        let record = RunRecord::from_ladder(ikey.clone(), skey, "sample", &report, 12, 1);
        let line = record.to_json_line();
        validate_ledger_line(&line).unwrap_or_else(|e| panic!("{e}\n{line}"));
        let v = json::parse(&line).unwrap();
        assert_eq!(v.get("instance_key").and_then(Value::as_str), Some(ikey.as_str()));
        assert_eq!(v.get("verdict").and_then(Value::as_str), Some("no_error_found"));
        let rungs = v.get("rungs").and_then(Value::as_array).unwrap();
        assert_eq!(rungs.len(), report.stages.len());
        assert_eq!(rungs[0].get("method").and_then(Value::as_str), Some("r.p."));
        assert!(v.get("host_parallelism").and_then(Value::as_f64).unwrap() >= 1.0);
    }

    #[test]
    fn append_accumulates_a_valid_multi_run_file() {
        let (ikey, skey, report) = sample_report();
        let dir = std::env::temp_dir().join(format!("bbec-ledger-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ledger.jsonl");
        let _ = std::fs::remove_file(&path);
        for i in 0..3 {
            let r = RunRecord::from_ladder(ikey.clone(), skey.clone(), "sample", &report, i, 1);
            r.append(&path).unwrap();
        }
        let content = std::fs::read_to_string(&path).unwrap();
        assert_eq!(validate_ledger(&content), Ok(3));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn validation_rejects_malformed_records() {
        for (line, why) in [
            ("not json", "invalid JSON"),
            (r#"{"type":"wat"}"#, "unknown type"),
            (r#"{"type":"run","schema":1}"#, "missing keys"),
        ] {
            assert!(validate_ledger_line(line).is_err(), "should reject ({why}): {line}");
        }
        // A full record with one rung field of the wrong type.
        let (ikey, skey, report) = sample_report();
        let good = RunRecord::from_ladder(ikey, skey, "s", &report, 1, 1).to_json_line();
        let bad = good.replace("\"finished\":true", "\"finished\":\"yes\"");
        assert!(validate_ledger_line(&bad).is_err(), "boolean fields are type-checked");
        assert!(validate_ledger("\n\n").is_ok(), "blank lines are tolerated");
    }
}
