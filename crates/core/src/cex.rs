//! Counterexample replay validation.
//!
//! Every check that reports [`Verdict::ErrorFound`](crate::Verdict) with a
//! witness input claims something *universally* quantified over the black
//! boxes: no box behaviour makes the implementation match the specification
//! at that input. This module replays that claim concretely — through
//! [`crate::samples::eval_with_fixed_boxes`] over every box-output
//! assignment — before a counterexample is allowed to leave a check, so a
//! bug in a symbolic engine cannot surface as a bogus witness.
//!
//! The replay contract, by counterexample shape:
//!
//! * `output: Some(j)` (random patterns, symbolic 0,1,X, local check, and
//!   their shard-lifted forms): output `j` must take the **same** value for
//!   every box-output assignment, and that value must differ from the
//!   specification — the "forced and wrong" claim of Lemma 2.1.
//! * `output: None` (output-exact, the SAT twins): for **every** box-output
//!   assignment some output must differ — the "no per-input repair" claim
//!   of Lemma 2.2.
//!
//! Exhaustive replay costs `2^l` evaluations for `l` box-output signals, so
//! it is gated by [`MAX_REPLAY_BOX_OUTPUTS`]; beyond the gate an attributed
//! witness is still cross-checked by one ternary simulation (sound but
//! incomplete: an `X` at the flagged output is inconclusive and accepted).
//!
//! The exhaustive sweep runs on the bit-parallel engine: box assignments
//! are enumerated 64 per block with [`bitsim::counter_word`] planes forced
//! onto the box outputs, so the `2^l` replays cost at most sixteen packed
//! topo walks instead of a thousand scalar ones.

use crate::partial::PartialCircuit;
use crate::report::Counterexample;
use bbec_netlist::bitsim::{self, BitSim};
use bbec_netlist::Circuit;

/// Exhaustive replay bound: counterexamples are replayed against all
/// `2^l` box-output assignments only while `l` stays at or below this.
pub const MAX_REPLAY_BOX_OUTPUTS: usize = 10;

/// Replays a counterexample against the paper's semantics.
///
/// Returns `Ok(())` when the witness genuinely convicts the design (or when
/// the instance is too large to replay and the cheap ternary cross-check is
/// inconclusive), `Err(detail)` when the witness is refutable — i.e. some
/// box behaviour reconciles implementation and specification at this input,
/// or an attributed output is not actually forced.
///
/// # Errors
///
/// `Err(detail)` with a human-readable refutation, including malformed
/// witnesses (wrong input arity, output index out of range).
pub fn validate_counterexample(
    spec: &Circuit,
    partial: &PartialCircuit,
    cex: &Counterexample,
) -> Result<(), String> {
    if cex.inputs.len() != spec.inputs().len() {
        return Err(format!(
            "witness has {} inputs, specification has {}",
            cex.inputs.len(),
            spec.inputs().len()
        ));
    }
    let expect = spec.eval(&cex.inputs).map_err(|e| format!("spec evaluation failed: {e}"))?;
    if let Some(j) = cex.output {
        if j >= expect.len() {
            return Err(format!("witness output {j} out of range ({} outputs)", expect.len()));
        }
    }
    let l = partial.num_box_outputs();
    if l > MAX_REPLAY_BOX_OUTPUTS {
        return validate_ternary(partial, cex, &expect);
    }

    let boxes = partial.box_outputs();
    let total = 1usize << l;
    let mut sim = BitSim::new(partial.circuit());
    let in_ones: Vec<u64> = cex.inputs.iter().map(|&b| bitsim::broadcast(b)).collect();
    let in_xs = vec![0u64; in_ones.len()];
    // The attributed output must hold one value across every assignment;
    // carried across blocks when 2^l exceeds one word.
    let mut forced_val: Option<bool> = None;
    let mut base = 0usize;
    while base < total {
        let lanes = bitsim::LANES.min(total - base);
        let mask = bitsim::lane_mask(lanes);
        // Lane j of block `base` replays box assignment `base + j`.
        let forced: Vec<_> = boxes
            .iter()
            .enumerate()
            .map(|(k, &s)| (s, bitsim::counter_word(base as u64, k), 0u64))
            .collect();
        let (o, x) = sim
            .eval_ternary_block_forced(&in_ones, &in_xs, &forced)
            .map_err(|e| format!("replay failed: {e}"))?;
        match cex.output {
            Some(j) => {
                let (oj, xj) = (o[j], x[j]);
                if xj & mask != 0 {
                    let z = base + (xj & mask).trailing_zeros() as usize;
                    return Err(format!(
                        "output {j} is undefined under box assignment {z:#b} \
                         (unclaimed undriven signal in its cone)"
                    ));
                }
                let v0 = *forced_val.get_or_insert(bitsim::lane(oj, 0));
                let flips = (oj ^ bitsim::broadcast(v0)) & mask;
                if flips != 0 {
                    let z = base + flips.trailing_zeros() as usize;
                    return Err(format!("output {j} is not forced: boxes {z:#b} flip it"));
                }
                if v0 == expect[j] {
                    return Err(format!(
                        "output {j} matches the spec under box assignment {base:#b}"
                    ));
                }
            }
            None => {
                let mut agree = mask;
                for (j, (&oj, &xj)) in o.iter().zip(x.iter()).enumerate() {
                    agree &= !xj & !(oj ^ bitsim::broadcast(expect[j]));
                }
                if agree != 0 {
                    let z = base + agree.trailing_zeros() as usize;
                    return Err(format!(
                        "box assignment {z:#b} reconciles every output with the spec"
                    ));
                }
            }
        }
        base += lanes;
    }
    Ok(())
}

/// Cheap cross-check for instances beyond the exhaustive-replay bound: one
/// ternary simulation with every box output at `X`. Definite-and-right
/// refutes an attributed witness; `X` (or an unattributed witness) is
/// inconclusive and accepted.
fn validate_ternary(
    partial: &PartialCircuit,
    cex: &Counterexample,
    expect: &[bool],
) -> Result<(), String> {
    let Some(j) = cex.output else { return Ok(()) };
    let tv: Vec<bbec_netlist::Tv> = cex.inputs.iter().map(|&b| b.into()).collect();
    let got =
        partial.circuit().eval_ternary(&tv).map_err(|e| format!("ternary replay failed: {e}"))?;
    match got[j].to_bool() {
        Some(v) if v == expect[j] => Err(format!("output {j} is definite and matches the spec")),
        _ => Ok(()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checks;
    use crate::report::CheckSettings;
    use crate::samples;

    fn settings() -> CheckSettings {
        CheckSettings { dynamic_reordering: false, ..CheckSettings::default() }
    }

    #[test]
    fn genuine_witnesses_replay_cleanly() {
        let (spec, partial) = samples::detected_by_01x();
        let out = checks::symbolic_01x(&spec, &partial, &settings()).unwrap();
        let cex = out.counterexample.expect("witness");
        validate_counterexample(&spec, &partial, &cex).expect("genuine witness must replay");

        let (spec, partial) = samples::detected_only_by_output_exact();
        let out = checks::output_exact(&spec, &partial, &settings()).unwrap();
        let cex = out.counterexample.expect("witness");
        validate_counterexample(&spec, &partial, &cex).expect("oe witness must replay");
    }

    /// ISSUE satellite: a corrupted counterexample is rejected.
    #[test]
    fn corrupted_witness_is_rejected() {
        let (spec, partial) = samples::detected_by_01x();
        let out = checks::symbolic_01x(&spec, &partial, &settings()).unwrap();
        let genuine = out.counterexample.expect("witness");

        // Flipping input bits until the claim no longer holds must trip the
        // replay. The 01x sample errs exactly when x1 = 0 (f1 = x1 ∧ Z1
        // emits a definite 0 while the spec may demand 1), so setting
        // x1 = 1 refutes the witness.
        let mut corrupted = genuine.clone();
        corrupted.inputs = vec![true, true, true, false, false];
        assert!(
            validate_counterexample(&spec, &partial, &corrupted).is_err(),
            "x1=1 leaves f1 = Z1, repairable by the box"
        );

        // A malformed witness is rejected outright.
        let mut short = genuine.clone();
        short.inputs.pop();
        assert!(validate_counterexample(&spec, &partial, &short).is_err());
        let mut bad_output = genuine;
        bad_output.output = Some(99);
        assert!(validate_counterexample(&spec, &partial, &bad_output).is_err());
    }

    #[test]
    fn unattributed_witness_requires_universal_mismatch() {
        let (spec, partial) = samples::detected_only_by_output_exact();
        // Any input is a genuine oe witness for fig 3(a) only if no single
        // box value satisfies both outputs: and(x)=xor(x) has no solution
        // anywhere except... check a refutable input does not exist — every
        // input convicts here, so build a refutable witness from the
        // completable pair instead.
        let out = checks::output_exact(&spec, &partial, &settings()).unwrap();
        assert!(out.counterexample.is_some());

        let (spec2, partial2) = samples::completable_pair();
        let fake = Counterexample { inputs: vec![false; 5], output: None };
        assert!(
            validate_counterexample(&spec2, &partial2, &fake).is_err(),
            "a completable design admits a repairing box assignment at every input"
        );
    }

    /// The scalar exhaustive replay the packed sweep replaced, kept as the
    /// differential reference.
    fn scalar_validate(
        spec: &Circuit,
        partial: &crate::PartialCircuit,
        cex: &Counterexample,
    ) -> Result<(), ()> {
        let expect = spec.eval(&cex.inputs).map_err(|_| ())?;
        let l = partial.num_box_outputs();
        let mut forced: Option<bool> = None;
        for z_bits in 0u64..1u64 << l {
            let z: Vec<bool> = (0..l).map(|k| z_bits >> k & 1 == 1).collect();
            let got = samples::eval_with_fixed_boxes(partial, &cex.inputs, &z);
            match cex.output {
                Some(j) => {
                    let v = got[j];
                    if forced.replace(v).is_some_and(|first| first != v) || v == expect[j] {
                        return Err(());
                    }
                }
                None => {
                    if got == expect {
                        return Err(());
                    }
                }
            }
        }
        Ok(())
    }

    #[test]
    fn packed_replay_agrees_with_scalar_replay() {
        use bbec_netlist::generators;
        // Random witnesses (mostly bogus, some genuine) over carved random
        // logic: the packed block sweep and the scalar 2^l loop must hand
        // down the same accept/reject decision every time.
        let mut rng = {
            use rand::SeedableRng;
            rand::rngs::StdRng::seed_from_u64(0xCE11)
        };
        for seed in 0..30u64 {
            let c = generators::random_logic("cx", 6, 24, 3, seed);
            let n_gates = c.gates().len() as u32;
            let boxed: Vec<u32> = (0..n_gates).filter(|g| g % 7 == seed as u32 % 7).collect();
            let Ok(partial) = crate::PartialCircuit::black_box_gates(&c, &boxed) else { continue };
            if partial.num_box_outputs() > 8 {
                continue;
            }
            for trial in 0..8 {
                use rand::Rng as _;
                let inputs: Vec<bool> = (0..6).map(|_| rng.random_bool(0.5)).collect();
                let output = if trial % 2 == 0 { Some(trial % 3) } else { None };
                let cex = Counterexample { inputs, output };
                let packed = validate_counterexample(&c, &partial, &cex).is_ok();
                let scalar = scalar_validate(&c, &partial, &cex).is_ok();
                assert_eq!(packed, scalar, "seed {seed} trial {trial}");
            }
        }
    }
}
