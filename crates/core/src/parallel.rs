//! Parallel check engine: cone-of-influence output sharding across
//! per-worker BDD managers.
//!
//! The per-output rungs of the paper's ladder (random patterns, symbolic
//! 0,1,X, local check) decide each primary output independently, so the
//! output set can be partitioned into **shards** — groups of outputs whose
//! fanin cones overlap — and each shard checked on its own worker thread
//! with a private [`bbec_bdd`] manager. Nothing is shared between workers:
//! every shard gets its own cone-of-influence subcircuits (spec and
//! implementation side), its own manager, computed cache and resource
//! budget, so no locks sit on the BDD hot path.
//!
//! The joint rungs (output-exact, input-exact and the SAT stages) quantify
//! over *all* outputs at once and cannot be sharded; they run sequentially
//! on the full circuits after the sharded phase, exactly as in
//! [`CheckLadder`].
//!
//! ## Determinism
//!
//! The engine runs the *identical* sharded pipeline regardless of the job
//! count — `jobs = 1` executes the same shard decomposition sequentially.
//! Shards are planned deterministically (union-find over shared cone
//! signals, ordered by lowest member output), every shard runs the same
//! mini-ladder with the same seed, and results are merged in shard order
//! after all workers join. Verdicts and counterexamples are therefore
//! bit-identical across job counts; only wall-clock time changes.
//!
//! ## Soundness of the shard checks
//!
//! A shard's spec subcircuit contains the full fanin cone of its outputs,
//! so those outputs are functions of the shard's inputs alone; a shard
//! counterexample extends to a full-circuit counterexample by assigning
//! the remaining inputs arbitrarily (the engine uses `false`). Black boxes
//! are clipped to the shard: a box contributes the outputs that feed the
//! shard's cone (treated as free unknowns by the per-output rungs, which
//! never read box *input* pins — only the input-exact check does, and it
//! never runs on shards).

use crate::checks::{CheckLadder, LadderReport, StageResult};
use crate::partial::{BlackBox, PartialCircuit};
use crate::report::{
    CheckError, CheckOutcome, CheckSettings, Counterexample, Method, ResourceStats, Verdict,
};
use bbec_netlist::Circuit;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// One unit of sharded work: a group of outputs with overlapping cones and
/// the extracted spec/implementation subcircuits that decide them.
#[derive(Debug, Clone)]
pub struct Shard {
    /// Parent output positions this shard checks (ascending).
    pub output_positions: Vec<usize>,
    /// Parent input positions both shard circuits expose, ascending. The
    /// spec and implementation sides share this interface by construction.
    pub input_positions: Vec<usize>,
    /// Cone-of-influence subcircuit of the specification.
    pub spec: Circuit,
    /// Cone-of-influence partial implementation with clipped black boxes.
    pub partial: PartialCircuit,
}

/// Runs the check ladder with the per-output rungs sharded across worker
/// threads, each owning a private BDD manager.
///
/// Produces the same [`LadderReport`] shape as [`CheckLadder`]: one
/// [`StageResult`] per executed method, stopping at the first error. The
/// per-output stages carry resource statistics merged across shards
/// (steps/hits summed, peaks and durations maxed).
#[derive(Debug, Clone)]
pub struct ParallelChecker {
    /// Shared settings; the tracer forks one child per shard and the
    /// absolute [`CheckSettings::deadline`] is honored by every worker.
    pub settings: CheckSettings,
    /// Worker threads for the sharded phase (`0` and `1` both mean
    /// sequential in-place execution). The job count never changes
    /// verdicts, only wall-clock time.
    pub jobs: usize,
    /// The stages to run, in ladder order. Per-output stages
    /// (`r.p.`, `0,1,X`, `loc.`) form the sharded phase; all others run
    /// jointly on the full circuits afterwards.
    pub stages: Vec<Method>,
    /// CEGAR refinement budget for [`Method::SatOutputExact`] stages.
    pub sat_refinement_budget: usize,
}

impl ParallelChecker {
    /// A checker with the paper's default five-rung ladder.
    pub fn new(settings: CheckSettings, jobs: usize) -> Self {
        let CheckLadder { stages, sat_refinement_budget, .. } = CheckLadder::default();
        ParallelChecker { settings, jobs, stages, sat_refinement_budget }
    }

    /// Whether a method decides each output independently and can shard.
    pub fn is_per_output(method: Method) -> bool {
        matches!(method, Method::RandomPatterns | Method::Symbolic01X | Method::Local)
    }

    /// Runs the ladder: sharded per-output phase first, joint phase after.
    ///
    /// # Errors
    ///
    /// Propagates the first non-budget failure, in shard order for the
    /// sharded phase ([`CheckError`]); budget-exceeded rungs are recorded
    /// in the report and do not fail the run.
    pub fn run(
        &self,
        spec: &Circuit,
        partial: &PartialCircuit,
    ) -> Result<LadderReport, CheckError> {
        crate::checks::validate_interface(spec, partial)?;
        let pre;
        let (spec, partial) = if self.settings.sweep {
            pre = crate::preprocess::preprocess(spec, partial, &self.settings)?;
            (&pre.spec, &pre.partial)
        } else {
            (spec, partial)
        };
        let phase_a: Vec<Method> =
            self.stages.iter().copied().filter(|&m| Self::is_per_output(m)).collect();
        let phase_b: Vec<Method> =
            self.stages.iter().copied().filter(|&m| !Self::is_per_output(m)).collect();

        let mut stages: Vec<StageResult> = Vec::new();
        let mut error_found = false;
        if !phase_a.is_empty() {
            let shards = plan_shards(spec, partial)?;
            if !shards.is_empty() {
                error_found = self.run_sharded(spec, partial, &shards, &phase_a, &mut stages)?;
            }
        }
        if !error_found && !phase_b.is_empty() {
            let ladder = CheckLadder {
                settings: self.settings.clone(),
                stages: phase_b,
                sat_refinement_budget: self.sat_refinement_budget,
            };
            stages.extend(ladder.run(spec, partial)?.stages);
        }
        Ok(LadderReport { stages })
    }

    /// Runs the per-output mini-ladder on every shard, merges the results
    /// into `stages` and reports whether an error stopped the ladder.
    fn run_sharded(
        &self,
        spec: &Circuit,
        partial: &PartialCircuit,
        shards: &[Shard],
        phase_a: &[Method],
        stages: &mut Vec<StageResult>,
    ) -> Result<bool, CheckError> {
        let phase_span = self.settings.tracer.span("core.parallel_phase");
        phase_span.set_attr("shards", shards.len());
        // The two parallelism axes multiply: with the shared-memory BDD
        // engine active (`bdd_threads >= 2`), each shard's manager already
        // saturates that many cores, so the sharded phase runs its shards
        // sequentially instead of oversubscribing the host.
        let jobs =
            if self.settings.bdd_threads >= 2 { 1 } else { self.jobs.clamp(1, shards.len()) };
        phase_span.set_attr("jobs", jobs);

        // One child tracer and one ladder per shard, fixed before any
        // worker starts, so the schedule cannot influence what runs.
        let children: Vec<bbec_trace::Tracer> =
            shards.iter().map(|_| self.settings.tracer.child()).collect();
        let ladders: Vec<CheckLadder> = children
            .iter()
            .enumerate()
            .map(|(i, child)| CheckLadder {
                settings: CheckSettings {
                    tracer: child.clone(),
                    // Each worker reports heartbeats under its own region;
                    // the scoped handles share one engine-wide rate gate
                    // and step counter, so the emission rate stays bounded
                    // regardless of the job count.
                    progress: self.settings.progress.scoped(&format!("shard {i}")),
                    ..self.settings.clone()
                },
                stages: phase_a.to_vec(),
                sat_refinement_budget: self.sat_refinement_budget,
            })
            .collect();

        let mut reports: Vec<Option<Result<LadderReport, CheckError>>> = Vec::new();
        if jobs <= 1 {
            for (shard, ladder) in shards.iter().zip(&ladders) {
                reports.push(Some(ladder.run(&shard.spec, &shard.partial)));
            }
        } else {
            let next = AtomicUsize::new(0);
            let slots: Mutex<Vec<Option<Result<LadderReport, CheckError>>>> =
                Mutex::new((0..shards.len()).map(|_| None).collect());
            std::thread::scope(|scope| {
                for _ in 0..jobs {
                    scope.spawn(|| loop {
                        let i = next.fetch_add(1, Ordering::SeqCst);
                        if i >= shards.len() {
                            break;
                        }
                        let result = ladders[i].run(&shards[i].spec, &shards[i].partial);
                        slots.lock().unwrap()[i] = Some(result);
                    });
                }
            });
            reports = slots.into_inner().unwrap();
        }

        // Graft every worker's span tree under one parent span per shard,
        // in shard order, so the merged trace is schedule-independent.
        for (i, (child, shard)) in children.iter().zip(shards).enumerate() {
            let span = self.settings.tracer.span("core.parallel_shard");
            span.set_attr("shard", i);
            span.set_attr("outputs", shard.output_positions.len());
            span.set_attr("inputs", shard.input_positions.len());
            self.settings.tracer.adopt(&child.finish());
        }
        drop(phase_span);

        // Unwrap shard results; the first non-budget error (by shard
        // index) fails the whole run, exactly as in the sequential ladder.
        let mut shard_reports: Vec<LadderReport> = Vec::with_capacity(reports.len());
        for r in reports {
            shard_reports.push(r.expect("every shard was scheduled")?);
        }
        merge_shard_reports(spec, partial, shards, &shard_reports, phase_a, stages)
    }
}

/// Merges per-shard mini-ladder reports into one stage list per method.
/// Returns `Ok(true)` when an error stops the ladder. Shared with the
/// service's incremental re-checker, which feeds it a mix of cached and
/// freshly computed shard reports — the merge is deterministic in shard
/// order, so cached and fresh entries are indistinguishable.
///
/// # Errors
///
/// [`CheckError::CounterexampleRejected`] if a shard witness, lifted to the
/// parent input space, fails concrete replay against the *full* circuits —
/// the end-to-end guarantee that sharding and lifting preserved it.
pub(crate) fn merge_shard_reports(
    spec: &Circuit,
    partial: &PartialCircuit,
    shards: &[Shard],
    reports: &[LadderReport],
    phase_a: &[Method],
    stages: &mut Vec<StageResult>,
) -> Result<bool, CheckError> {
    for (mi, &method) in phase_a.iter().enumerate() {
        // A shard report is shorter than `mi + 1` only if the shard found
        // an error at an earlier rung — in which case the merge stopped
        // there and this loop iteration is never reached.
        let entries: Vec<&StageResult> = reports.iter().filter_map(|r| r.stages.get(mi)).collect();
        let stats = merged_stats(&entries);

        let error = entries.iter().enumerate().find_map(|(si, e)| match e {
            StageResult::Finished(o) if o.is_error() => Some((si, o)),
            _ => None,
        });
        if let Some((si, outcome)) = error {
            // `entries[si]` belongs to `shards[si]`: every shard that
            // reached rung `mi` has an entry, and those that stopped
            // earlier would have stopped this merge at that rung.
            let cex = outcome
                .counterexample
                .as_ref()
                .map(|c| lift_counterexample(&shards[si], c, spec.inputs().len()));
            if let Some(c) = &cex {
                crate::cex::validate_counterexample(spec, partial, c).map_err(|detail| {
                    CheckError::CounterexampleRejected {
                        method,
                        detail: format!("shard {si} lifted witness: {detail}"),
                    }
                })?;
            }
            stages.push(StageResult::Finished(CheckOutcome {
                method,
                verdict: Verdict::ErrorFound,
                counterexample: cex,
                stats,
            }));
            return Ok(true);
        }

        let abort = entries.iter().enumerate().find_map(|(si, e)| match e {
            StageResult::BudgetExceeded { reason, .. } => Some((si, reason.clone())),
            _ => None,
        });
        if let Some((si, reason)) = abort {
            let elapsed = entries.iter().map(|e| e.elapsed()).max().unwrap_or_default();
            stages.push(StageResult::BudgetExceeded {
                method,
                reason: format!("shard {si}: {reason}"),
                stats: Some(stats),
                elapsed,
            });
            continue;
        }

        stages.push(StageResult::Finished(CheckOutcome {
            method,
            verdict: Verdict::NoErrorFound,
            counterexample: None,
            stats,
        }));
    }
    Ok(false)
}

/// Merges shard stage statistics: additive counters sum, peaks and
/// wall-clock durations take the maximum across shards (the workers ran
/// concurrently, so the slowest shard bounds the phase).
fn merged_stats(entries: &[&StageResult]) -> ResourceStats {
    let mut merged = ResourceStats::default();
    for e in entries {
        let s = match e {
            StageResult::Finished(o) => o.stats,
            StageResult::BudgetExceeded { stats, .. } => match stats {
                Some(s) => *s,
                None => continue,
            },
        };
        merged.impl_nodes += s.impl_nodes;
        merged.peak_check_nodes = merged.peak_check_nodes.max(s.peak_check_nodes);
        merged.duration = merged.duration.max(s.duration);
        merged.apply_steps += s.apply_steps;
        merged.cache_hits += s.cache_hits;
        merged.cache_misses += s.cache_misses;
        merged.gc_passes += s.gc_passes;
        merged.reorder_passes += s.reorder_passes;
        merged.patterns += s.patterns;
    }
    merged
}

/// Lifts a shard counterexample to the parent input space: shard inputs
/// keep their values, inputs outside the shard (which cannot influence the
/// shard's outputs) default to `false`.
fn lift_counterexample(
    shard: &Shard,
    cex: &Counterexample,
    parent_inputs: usize,
) -> Counterexample {
    let mut inputs = vec![false; parent_inputs];
    for (k, &pos) in shard.input_positions.iter().enumerate() {
        inputs[pos] = cex.inputs.get(k).copied().unwrap_or(false);
    }
    let output = cex.output.map(|o| shard.output_positions[o]);
    Counterexample { inputs, output }
}

/// Plans the shard decomposition for a spec/implementation pair.
///
/// Two outputs land in the same shard iff their fanin cones share a
/// non-input signal on either side — a shared gate, or a shared black-box
/// output on the implementation side. Primary inputs are shared freely
/// (each shard exposes the union of the spec-side and implementation-side
/// cone inputs, so both sides keep matching interfaces). Shards are
/// ordered by their smallest member output position; the plan is a pure
/// function of the two circuits.
///
/// # Errors
///
/// [`CheckError::InterfaceMismatch`] if the output counts differ;
/// [`CheckError::InvalidPartial`] if a clipped shard violates the partial
/// structure (cannot happen for inputs accepted by [`PartialCircuit::new`]).
pub fn plan_shards(spec: &Circuit, partial: &PartialCircuit) -> Result<Vec<Shard>, CheckError> {
    crate::checks::validate_interface(spec, partial)?;
    let n = spec.outputs().len();
    let mut parent = (0..n).collect::<Vec<usize>>();

    fn find(parent: &mut [usize], mut x: usize) -> usize {
        while parent[x] != x {
            parent[x] = parent[parent[x]];
            x = parent[x];
        }
        x
    }
    fn union(parent: &mut [usize], a: usize, b: usize) {
        let (ra, rb) = (find(parent, a), find(parent, b));
        if ra != rb {
            // Deterministic representative: the smaller root wins.
            let (lo, hi) = (ra.min(rb), ra.max(rb));
            parent[hi] = lo;
        }
    }

    for circuit in [spec, partial.circuit()] {
        let mut is_input = vec![false; circuit.signal_count()];
        for &s in circuit.inputs() {
            is_input[s.index()] = true;
        }
        // First output whose cone contains each non-input signal.
        let mut owner: Vec<Option<usize>> = vec![None; circuit.signal_count()];
        let mut claim = |sig: bbec_netlist::SignalId, p: usize, parent: &mut [usize]| {
            if is_input[sig.index()] {
                return;
            }
            match owner[sig.index()] {
                Some(prev) => union(parent, prev, p),
                None => owner[sig.index()] = Some(p),
            }
        };
        for (p, &(_, root)) in circuit.outputs().iter().enumerate() {
            claim(root, p, &mut parent);
            for g in circuit.fanin_cone_gates(&[root]) {
                let gate = &circuit.gates()[g as usize];
                claim(gate.output, p, &mut parent);
                for &inp in &gate.inputs {
                    claim(inp, p, &mut parent);
                }
            }
        }
    }

    // Group outputs by root, ordered by smallest member (== the root,
    // because union always keeps the smaller index as representative).
    let mut groups: Vec<Vec<usize>> = vec![Vec::new(); n];
    for p in 0..n {
        let r = find(&mut parent, p);
        groups[r].push(p);
    }

    let mut shards = Vec::new();
    for group in groups.into_iter().filter(|g| !g.is_empty()) {
        // The union of both sides' cone inputs keeps the interfaces equal.
        let mut input_positions = spec.cone_input_positions(&group);
        input_positions.extend(partial.circuit().cone_input_positions(&group));
        input_positions.sort_unstable();
        input_positions.dedup();

        let spec_cone = spec.cone_subcircuit(&group, &input_positions);
        let impl_cone = partial.circuit().cone_subcircuit(&group, &input_positions);
        debug_assert_eq!(spec_cone.input_positions, impl_cone.input_positions);
        debug_assert_eq!(spec_cone.output_positions, impl_cone.output_positions);

        // Clip each black box to the shard: keep the outputs feeding the
        // cone; inputs are clipped to in-cone signals (the per-output
        // rungs never read them, and clipping keeps the host valid).
        let mut boxes = Vec::new();
        for b in partial.boxes() {
            let outputs: Vec<_> =
                b.outputs.iter().filter_map(|&s| impl_cone.signal_map[s.index()]).collect();
            if outputs.is_empty() {
                continue;
            }
            let inputs: Vec<_> =
                b.inputs.iter().filter_map(|&s| impl_cone.signal_map[s.index()]).collect();
            boxes.push(BlackBox { name: b.name.clone(), inputs, outputs });
        }
        let shard_partial = PartialCircuit::new(impl_cone.circuit, boxes)?;

        shards.push(Shard {
            output_positions: spec_cone.output_positions,
            input_positions: spec_cone.input_positions,
            spec: spec_cone.circuit,
            partial: shard_partial,
        });
    }
    shards.sort_by_key(|s| s.output_positions[0]);
    Ok(shards)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::samples;
    use bbec_netlist::{generators, Mutation, Tv};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn settings() -> CheckSettings {
        CheckSettings {
            dynamic_reordering: false,
            random_patterns: 200,
            ..CheckSettings::default()
        }
    }

    /// Disjoint cones shard one-per-output; shared logic merges shards.
    #[test]
    fn shard_plan_follows_cone_overlap() {
        let spec = generators::disjoint_cones(8, 4, 10, 7);
        let partial = PartialCircuit::black_box_gates(&spec, &[0]).unwrap();
        let shards = plan_shards(&spec, &partial).unwrap();
        assert_eq!(shards.len(), 8, "independent blocks shard per output");
        for (i, s) in shards.iter().enumerate() {
            assert_eq!(s.output_positions, vec![i]);
            assert_eq!(s.spec.inputs().len(), s.partial.circuit().inputs().len());
            assert_eq!(s.spec.outputs().len(), 1);
        }

        // An adder chains carries through every output: one shard.
        let adder = generators::ripple_carry_adder(4);
        let p = PartialCircuit::black_box_gates(&adder, &[0]).unwrap();
        let shards = plan_shards(&adder, &p).unwrap();
        assert_eq!(shards.len(), 1, "overlapping cones must merge");
        assert_eq!(shards[0].output_positions, (0..adder.outputs().len()).collect::<Vec<_>>());
    }

    /// The black box lands (clipped) exactly in the shards its outputs feed.
    #[test]
    fn shard_plan_clips_black_boxes() {
        let spec = generators::disjoint_cones(4, 3, 8, 11);
        // Black-box one gate of block 0's cone.
        let g = spec.fanin_cone_gates(&[spec.outputs()[0].1])[0];
        let partial = PartialCircuit::black_box_gates(&spec, &[g]).unwrap();
        let shards = plan_shards(&spec, &partial).unwrap();
        assert_eq!(shards.len(), 4);
        assert_eq!(shards[0].partial.boxes().len(), 1, "box feeds shard 0");
        for s in &shards[1..] {
            assert!(s.partial.boxes().is_empty(), "box must not leak into other shards");
        }
    }

    /// jobs=1 and jobs=4 produce bit-identical reports on a clean design.
    #[test]
    fn job_count_does_not_change_clean_reports() {
        let (spec, partial) = samples::completable_pair();
        let seq = ParallelChecker::new(settings(), 1).run(&spec, &partial).unwrap();
        let par = ParallelChecker::new(settings(), 4).run(&spec, &partial).unwrap();
        assert_eq!(seq.verdict(), Verdict::NoErrorFound);
        assert_eq!(seq.verdict(), par.verdict());
        assert_eq!(seq.stages.len(), par.stages.len());
        for (a, b) in seq.stages.iter().zip(&par.stages) {
            assert_eq!(a.method(), b.method());
            assert_eq!(a.outcome().map(|o| o.verdict), b.outcome().map(|o| o.verdict));
        }
    }

    /// A shard-found error lifts its counterexample into the parent input
    /// space and the lifted vector actually distinguishes the circuits.
    #[test]
    fn shard_error_lifts_counterexample() {
        let spec = generators::disjoint_cones(6, 4, 12, 3);
        let mut rng = StdRng::seed_from_u64(5);
        let all: Vec<u32> = (0..spec.gates().len() as u32).collect();
        let mutated = Mutation::random(&spec, &all, &mut rng).unwrap().apply(&spec).unwrap();
        let partial = PartialCircuit::black_box_gates(&mutated, &[0]).unwrap();

        let report = ParallelChecker::new(settings(), 4).run(&spec, &partial).unwrap();
        let sequential = ParallelChecker::new(settings(), 1).run(&spec, &partial).unwrap();
        assert_eq!(report.verdict(), sequential.verdict());
        assert_eq!(report.counterexample(), sequential.counterexample());
        let per_output_decided =
            report.deciding_method().is_some_and(ParallelChecker::is_per_output);
        if let (Some(cex), true) = (report.counterexample(), per_output_decided) {
            assert_eq!(cex.inputs.len(), spec.inputs().len(), "cex must be in parent space");
            // A per-output witness exposes an output difference under the
            // partial implementation's ternary semantics (X counts: the
            // implementation cannot resolve to the spec's value).
            let tv: Vec<Tv> = cex.inputs.iter().map(|&b| b.into()).collect();
            let s = spec.eval_ternary(&tv).unwrap();
            let i = partial.circuit().eval_ternary(&tv).unwrap();
            if let Some(o) = cex.output {
                assert_ne!(s[o], i[o], "lifted cex must distinguish output {o}");
            }
        }
    }

    /// The joint rungs still run (sequentially) after a clean phase A.
    #[test]
    fn joint_rungs_follow_the_sharded_phase() {
        let (spec, partial) = samples::detected_only_by_input_exact();
        let report = ParallelChecker::new(settings(), 4).run(&spec, &partial).unwrap();
        assert_eq!(report.verdict(), Verdict::ErrorFound);
        assert_eq!(report.deciding_method(), Some(Method::InputExact));
        assert_eq!(report.stages.len(), 5);
    }

    /// A budget abort in one shard degrades that rung, not the run.
    #[test]
    fn shard_budget_abort_degrades_gracefully() {
        let (spec, partial) = samples::detected_only_by_input_exact();
        let tight = CheckSettings { step_limit: Some(1), ..settings() };
        let report = ParallelChecker::new(tight, 4).run(&spec, &partial).unwrap();
        let exceeded = report.budget_exceeded();
        assert!(
            exceeded.contains(&Method::Symbolic01X) || exceeded.contains(&Method::Local),
            "a symbolic shard rung must trip the 1-step budget, got {exceeded:?}"
        );
        // Sharded-phase abort reasons carry the shard index; joint-phase
        // rungs keep their plain reasons.
        for s in &report.stages {
            if let StageResult::BudgetExceeded { method, reason, .. } = s {
                if ParallelChecker::is_per_output(*method) {
                    assert!(reason.starts_with("shard "), "reason: {reason}");
                }
            }
        }
    }

    /// Merged traces are schedule-independent and schema-valid.
    #[test]
    fn merged_trace_is_deterministic_in_shape() {
        let spec = generators::disjoint_cones(4, 3, 8, 9);
        let partial = PartialCircuit::black_box_gates(&spec, &[0]).unwrap();
        let shape_of = |jobs: usize| {
            let tracer = bbec_trace::Tracer::new();
            let s = CheckSettings { tracer: tracer.clone(), ..settings() };
            ParallelChecker::new(s, jobs).run(&spec, &partial).unwrap();
            let trace = tracer.finish();
            bbec_trace::schema::validate_stream(&trace.to_jsonl()).unwrap();
            trace
                .events()
                .iter()
                .filter_map(|e| match e {
                    bbec_trace::TraceEvent::Span { name, depth, .. } => Some((*name, *depth)),
                    _ => None,
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(shape_of(1), shape_of(4), "span tree must not depend on the schedule");
    }
}
