//! The paper's ladder of black-box equivalence checks.
//!
//! All checks share the same contract: **sound** (an error is reported only
//! if no black-box implementation can repair the design) but differently
//! **complete**. From weakest to strongest:
//!
//! 1. [`random_patterns`] — plain 0,1,X simulation on random vectors,
//! 2. [`symbolic_01x`] — symbolic 0,1,X simulation (Section 2.1),
//! 3. [`local_check`] — Z_i simulation, per-output check (Lemma 2.1),
//! 4. [`output_exact`] — joint condition over all outputs (Lemma 2.2),
//! 5. [`input_exact`] — respects the boxes' actual input pins
//!    (equation (1)); exact when there is a single black box
//!    (Theorem 2.2).
//!
//! [`exact_decomposition`] implements the NP-complete criterion of
//! Theorem 2.1 by brute force for tiny boxes; [`CheckLadder`] runs the
//! methods cheapest-first as the paper's conclusion recommends.
//!
//! Every BDD-based check runs under the resource governor configured by
//! [`crate::CheckSettings`]: exceeding the node, step, or time budget
//! surfaces as [`CheckError::BudgetExceeded`] — a value, not a panic — and
//! leaves the manager usable for weaker checks or later queries.

mod exact;
mod ladder;
mod random;
mod ternary;
mod zi;

pub use exact::{exact_decomposition, BoxTable, ExactOutcome};
pub use ladder::{CheckLadder, LadderReport, StageResult};
pub use random::{random_patterns, random_patterns_scalar};
pub use ternary::symbolic_01x;
pub(crate) use ternary::symbolic_01x_with;
pub use zi::{input_exact, local_check, output_exact};
pub(crate) use zi::{input_exact_with, local_check_with, output_exact_with};

use crate::partial::PartialCircuit;
use crate::report::{BudgetAbort, CheckError, ResourceStats};
use crate::symbolic::SymbolicContext;
use bbec_bdd::{Bdd, OpTelemetry};
use bbec_netlist::Circuit;
use std::time::Instant;

/// Validates that spec and partial implementation share an interface.
pub(crate) fn validate_interface(
    spec: &Circuit,
    partial: &PartialCircuit,
) -> Result<(), CheckError> {
    let imp = partial.circuit();
    if spec.inputs().len() != imp.inputs().len() {
        return Err(CheckError::InterfaceMismatch {
            detail: format!(
                "{} spec inputs vs {} implementation inputs",
                spec.inputs().len(),
                imp.inputs().len()
            ),
        });
    }
    if spec.outputs().len() != imp.outputs().len() {
        return Err(CheckError::InterfaceMismatch {
            detail: format!(
                "{} spec outputs vs {} implementation outputs",
                spec.outputs().len(),
                imp.outputs().len()
            ),
        });
    }
    Ok(())
}

/// Per-check resource probe: arms the context's budget window, snapshots
/// the governor's telemetry, and turns the deltas into [`ResourceStats`]
/// on both the success and the abort path.
pub(crate) struct CheckProbe {
    start: Instant,
    telemetry: OpTelemetry,
    live_before: usize,
    /// Per-op cache snapshot, taken only when the tracer is enabled, so
    /// [`CheckProbe::stats`] can flush this window's deltas as counters.
    cache_by_op: Option<Vec<(&'static str, u64, u64)>>,
}

impl CheckProbe {
    /// Arms a fresh budget window on `ctx` and starts measuring.
    pub(crate) fn begin(ctx: &mut SymbolicContext) -> Self {
        ctx.arm_budget();
        ctx.manager.reset_peak();
        let cache_by_op = ctx.tracer().enabled().then(|| ctx.manager.cache_stats_by_op());
        CheckProbe {
            start: Instant::now(),
            telemetry: ctx.manager.telemetry(),
            live_before: ctx.manager.stats().live_nodes,
            cache_by_op,
        }
    }

    /// Stats for a check that ran to completion (or up to an abort).
    ///
    /// When tracing is on, this is also the manager counter flush point:
    /// the window's per-operation cache deltas, apply steps and GC/reorder
    /// pass counts accumulate into the tracer (deltas add up correctly
    /// across the short-lived managers of one-shot checks).
    pub(crate) fn stats(&self, ctx: &SymbolicContext, impl_nodes: usize) -> ResourceStats {
        let delta = ctx.manager.telemetry().since(&self.telemetry);
        let peak = ctx.manager.stats().peak_live_nodes;
        if let Some(before) = &self.cache_by_op {
            let tracer = ctx.tracer();
            for (now, was) in ctx.manager.cache_stats_by_op().iter().zip(before) {
                let hits = now.1.saturating_sub(was.1);
                let misses = now.2.saturating_sub(was.2);
                if hits > 0 {
                    tracer.counter_add(&format!("bdd.cache.{}.hits", now.0), hits);
                }
                if misses > 0 {
                    tracer.counter_add(&format!("bdd.cache.{}.misses", now.0), misses);
                }
            }
            tracer.counter_add("bdd.apply_steps", delta.apply_steps);
            tracer.counter_add("bdd.gc.passes", delta.gc_passes);
            tracer.counter_add("bdd.reorder.passes", delta.reorder_passes);
            tracer.record("bdd.live_peak", peak as u64);
        }
        let mut stats = ResourceStats {
            impl_nodes,
            peak_check_nodes: peak.saturating_sub(self.live_before),
            duration: self.start.elapsed(),
            ..ResourceStats::default()
        };
        stats.absorb_telemetry(&delta);
        stats
    }

    /// Converts a budget abort into a [`CheckError`] carrying the partial
    /// resource statistics, after dropping the aborted check's protections.
    pub(crate) fn abort(
        &self,
        ctx: &mut SymbolicContext,
        guard: Guard,
        e: bbec_bdd::BudgetExceeded,
    ) -> CheckError {
        guard.release_all(ctx);
        let reason = e.to_string();
        // Postmortem first: the flight-recorder tail shows what the core
        // was doing when the budget fired, spliced into the trace (and any
        // streaming sink) before the abort propagates.
        ctx.manager.dump_flight_recorder(&reason);
        let stats = self.stats(ctx, 0);
        CheckError::BudgetExceeded(BudgetAbort::new(reason).with_stats(stats))
    }

    /// Attaches this probe's partial statistics to a budget abort that was
    /// converted to [`CheckError`] further down (e.g. inside the symbolic
    /// simulator, which releases its own protections before returning).
    pub(crate) fn annotate(&self, ctx: &SymbolicContext, err: CheckError) -> CheckError {
        match err {
            CheckError::BudgetExceeded(abort) if abort.stats.is_none() => {
                ctx.manager.dump_flight_recorder(&abort.reason);
                let stats = self.stats(ctx, 0);
                CheckError::BudgetExceeded(abort.with_stats(stats))
            }
            other => other,
        }
    }
}

/// Tracks the BDD protections a check has taken so they can be released
/// exactly once on every exit path (normal completion or budget abort).
///
/// Protections on sticky nodes (projections, constants) are no-ops in the
/// manager, so tracking them here is harmless.
#[derive(Default)]
pub(crate) struct Guard {
    held: Vec<Bdd>,
}

impl Guard {
    pub(crate) fn new() -> Self {
        Guard::default()
    }

    /// Protects `f` and remembers to release it later.
    pub(crate) fn keep(&mut self, ctx: &mut SymbolicContext, f: Bdd) -> Bdd {
        ctx.manager.protect(f);
        self.held.push(f);
        f
    }

    /// Releases one tracked handle early (e.g. a superseded accumulator).
    pub(crate) fn drop_one(&mut self, ctx: &mut SymbolicContext, f: Bdd) {
        if let Some(i) = self.held.iter().rposition(|&h| h == f) {
            self.held.swap_remove(i);
            ctx.manager.release(f);
        }
    }

    /// Releases every tracked protection.
    pub(crate) fn release_all(self, ctx: &mut SymbolicContext) {
        for f in self.held {
            ctx.manager.release(f);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bbec_netlist::generators;

    #[test]
    fn interface_mismatch_detected() {
        let spec = generators::ripple_carry_adder(3);
        let other = generators::ripple_carry_adder(4);
        let p = crate::PartialCircuit::black_box_gates(&other, &[0]).unwrap();
        assert!(matches!(validate_interface(&spec, &p), Err(CheckError::InterfaceMismatch { .. })));
    }

    #[test]
    fn guard_releases_each_protection_once() {
        let spec = generators::ripple_carry_adder(2);
        let settings = crate::CheckSettings::default();
        let mut ctx = SymbolicContext::new(&spec, &settings);
        let x = ctx.manager.var(ctx.input_vars()[0]);
        let y = ctx.manager.var(ctx.input_vars()[1]);
        ctx.manager.collect_garbage();
        let live_base = ctx.manager.stats().live_nodes;
        let f = ctx.manager.and(x, y);

        let mut guard = Guard::new();
        guard.keep(&mut ctx, f);
        guard.keep(&mut ctx, f);
        guard.drop_one(&mut ctx, f);

        // One protection still held: f survives a collection.
        ctx.manager.collect_garbage();
        assert!(ctx.manager.stats().live_nodes > live_base, "held protection must keep f alive");

        // After the final release the footprint returns to the baseline.
        guard.release_all(&mut ctx);
        ctx.manager.collect_garbage();
        assert_eq!(ctx.manager.stats().live_nodes, live_base, "guard must balance protect/release");
    }
}
