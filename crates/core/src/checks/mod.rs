//! The paper's ladder of black-box equivalence checks.
//!
//! All checks share the same contract: **sound** (an error is reported only
//! if no black-box implementation can repair the design) but differently
//! **complete**. From weakest to strongest:
//!
//! 1. [`random_patterns`] — plain 0,1,X simulation on random vectors,
//! 2. [`symbolic_01x`] — symbolic 0,1,X simulation (Section 2.1),
//! 3. [`local_check`] — Z_i simulation, per-output check (Lemma 2.1),
//! 4. [`output_exact`] — joint condition over all outputs (Lemma 2.2),
//! 5. [`input_exact`] — respects the boxes' actual input pins
//!    (equation (1)); exact when there is a single black box
//!    (Theorem 2.2).
//!
//! [`exact_decomposition`] implements the NP-complete criterion of
//! Theorem 2.1 by brute force for tiny boxes; [`CheckLadder`] runs the
//! methods cheapest-first as the paper's conclusion recommends.

mod exact;
mod ladder;
mod random;
mod ternary;
mod zi;

pub use exact::{exact_decomposition, BoxTable, ExactOutcome};
pub use ladder::{CheckLadder, LadderReport};
pub use random::random_patterns;
pub use ternary::symbolic_01x;
pub(crate) use ternary::symbolic_01x_with;
pub(crate) use zi::{input_exact_with, local_check_with, output_exact_with};
pub use zi::{input_exact, local_check, output_exact};

use crate::partial::PartialCircuit;
use crate::report::CheckError;
use bbec_bdd::ExceedNodeLimitError;
use bbec_netlist::Circuit;

/// Runs a BDD-based check under the node budget: an
/// [`ExceedNodeLimitError`] panic from the manager becomes a
/// [`CheckError::BudgetExceeded`] instead of aborting the process.
pub(crate) fn with_node_budget<T>(
    f: impl FnOnce() -> Result<T, CheckError>,
) -> Result<T, CheckError> {
    install_quiet_hook();
    match std::panic::catch_unwind(std::panic::AssertUnwindSafe(f)) {
        Ok(result) => result,
        Err(payload) => match payload.downcast_ref::<ExceedNodeLimitError>() {
            Some(e) => Err(CheckError::BudgetExceeded(e.to_string())),
            None => std::panic::resume_unwind(payload),
        },
    }
}

/// Silences the default panic-hook chatter for the expected
/// budget-exceeded control-flow panic; all other panics print as usual.
fn install_quiet_hook() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if info.payload().downcast_ref::<ExceedNodeLimitError>().is_none() {
                previous(info);
            }
        }));
    });
}

/// Validates that spec and partial implementation share an interface.
pub(crate) fn validate_interface(
    spec: &Circuit,
    partial: &PartialCircuit,
) -> Result<(), CheckError> {
    let imp = partial.circuit();
    if spec.inputs().len() != imp.inputs().len() {
        return Err(CheckError::InterfaceMismatch {
            detail: format!(
                "{} spec inputs vs {} implementation inputs",
                spec.inputs().len(),
                imp.inputs().len()
            ),
        });
    }
    if spec.outputs().len() != imp.outputs().len() {
        return Err(CheckError::InterfaceMismatch {
            detail: format!(
                "{} spec outputs vs {} implementation outputs",
                spec.outputs().len(),
                imp.outputs().len()
            ),
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use bbec_netlist::generators;

    #[test]
    fn interface_mismatch_detected() {
        let spec = generators::ripple_carry_adder(3);
        let other = generators::ripple_carry_adder(4);
        let p = crate::PartialCircuit::black_box_gates(&other, &[0]).unwrap();
        assert!(matches!(
            validate_interface(&spec, &p),
            Err(CheckError::InterfaceMismatch { .. })
        ));
    }
}
