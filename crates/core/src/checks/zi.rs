//! Z_i simulation based checks: local (Lemma 2.1), output-exact
//! (Lemma 2.2) and input-exact (equation (1)) — Section 2.2 of the paper.

use crate::checks::{validate_interface, CheckProbe, Guard};
use crate::partial::PartialCircuit;
use crate::report::{CheckError, CheckOutcome, CheckSettings, Counterexample, Method, Verdict};
use crate::symbolic::{PartialSymbolic, SymbolicContext};
use bbec_bdd::{Bdd, BudgetExceeded};
use bbec_netlist::Circuit;

/// Shared preamble of the Z_i checks: both function vectors plus the
/// per-check resource probe and protection guard. Borrows the context so a
/// [`crate::CheckSession`] can amortise the specification BDDs over many
/// checks.
pub(crate) struct ZiSetup<'a> {
    ctx: &'a mut SymbolicContext,
    spec_bdds: &'a [Bdd],
    sym: PartialSymbolic,
    impl_nodes: usize,
    probe: CheckProbe,
    guard: Guard,
}

/// One-shot variant: fresh context and spec BDDs per call.
struct OwnedSetup {
    ctx: SymbolicContext,
    spec_bdds: Vec<Bdd>,
}

fn owned_setup(spec: &Circuit, settings: &CheckSettings) -> Result<OwnedSetup, CheckError> {
    let mut ctx = SymbolicContext::new(spec, settings);
    let probe = CheckProbe::begin(&mut ctx);
    let spec_bdds = match ctx.build_outputs(spec) {
        Ok(b) => b,
        Err(e) => return Err(probe.annotate(&ctx, e)),
    };
    Ok(OwnedSetup { ctx, spec_bdds })
}

pub(crate) fn setup_in<'a>(
    ctx: &'a mut SymbolicContext,
    spec_bdds: &'a [Bdd],
    spec: &Circuit,
    partial: &PartialCircuit,
) -> Result<ZiSetup<'a>, CheckError> {
    validate_interface(spec, partial)?;
    let probe = CheckProbe::begin(ctx);
    let sym = match ctx.build_partial(partial) {
        Ok(sym) => sym,
        // The simulator released its own protections; attach partial stats.
        Err(e) => return Err(probe.annotate(ctx, e)),
    };
    let impl_nodes = ctx.manager.node_count_many(&sym.outputs);
    Ok(ZiSetup { ctx, spec_bdds, sym, impl_nodes, probe, guard: Guard::new() })
}

impl ZiSetup<'_> {
    fn finish(
        self,
        method: Method,
        verdict: Verdict,
        counterexample: Option<Counterexample>,
    ) -> CheckOutcome {
        let ZiSetup { ctx, probe, guard, impl_nodes, .. } = self;
        let stats = probe.stats(ctx, impl_nodes);
        guard.release_all(ctx);
        CheckOutcome { method, verdict, counterexample, stats }
    }

    /// Converts a mid-check budget abort, releasing this check's
    /// protections and attaching the partial statistics.
    fn abort(self, e: BudgetExceeded) -> CheckError {
        let ZiSetup { ctx, probe, guard, .. } = self;
        probe.abort(ctx, guard, e)
    }
}

/// The **local check** (Lemma 2.1): for each output `j` separately, report
/// an error if some input fixes `g_j` to a constant (independently of every
/// `Z_i`) that contradicts `f_j`.
///
/// Strictly stronger than [`crate::checks::symbolic_01x`] because the Z_i
/// functions track *which* box output an unknown came from (the paper's
/// Figure 2(b) separation).
///
/// # Errors
///
/// [`CheckError::InterfaceMismatch`], [`CheckError::Netlist`], or
/// [`CheckError::BudgetExceeded`].
pub fn local_check(
    spec: &Circuit,
    partial: &PartialCircuit,
    settings: &CheckSettings,
) -> Result<CheckOutcome, CheckError> {
    let mut owned = owned_setup(spec, settings)?;
    local_check_with(&mut owned.ctx, &owned.spec_bdds, spec, partial)
}

pub(crate) fn local_check_with(
    ctx: &mut SymbolicContext,
    spec_bdds: &[Bdd],
    spec: &Circuit,
    partial: &PartialCircuit,
) -> Result<CheckOutcome, CheckError> {
    let mut s = setup_in(ctx, spec_bdds, spec, partial)?;
    match local_body(&mut s) {
        Ok((verdict, cex)) => {
            // Release the setup's protections before surfacing a rejected
            // witness, so a session context stays leak-free on this path.
            let reject = cex
                .as_ref()
                .and_then(|c| crate::cex::validate_counterexample(spec, partial, c).err());
            let outcome = s.finish(Method::Local, verdict, cex);
            match reject {
                Some(detail) => {
                    Err(CheckError::CounterexampleRejected { method: Method::Local, detail })
                }
                None => Ok(outcome),
            }
        }
        Err(e) => Err(s.abort(e)),
    }
}

fn local_body(s: &mut ZiSetup) -> Result<(Verdict, Option<Counterexample>), BudgetExceeded> {
    let zcube = s.ctx.manager.try_cube(&s.sym.all_z_vars)?;
    s.guard.keep(s.ctx, zcube.as_bdd());
    let tracer = s.ctx.tracer().clone();
    for j in 0..s.spec_bdds.len() {
        let span = tracer.span("core.local_output");
        span.set_attr("output", j);
        let g = s.sym.outputs[j];
        let f = s.spec_bdds[j];
        // Inputs forcing g_j ≡ 1 while f_j = 0 …
        let forced1 = s.ctx.manager.try_forall(g, zcube)?;
        let nf = s.ctx.manager.try_not(f)?;
        let wrong1 = s.ctx.manager.try_and(forced1, nf)?;
        // … or forcing g_j ≡ 0 while f_j = 1.
        let ng = s.ctx.manager.try_not(g)?;
        let forced0 = s.ctx.manager.try_forall(ng, zcube)?;
        let wrong0 = s.ctx.manager.try_and(forced0, f)?;
        let wrong = s.ctx.manager.try_or(wrong1, wrong0)?;
        if let Some(a) = s.ctx.manager.any_sat(wrong) {
            span.set_attr("error", true);
            let inputs = s.ctx.witness_inputs(&a);
            return Ok((Verdict::ErrorFound, Some(Counterexample { inputs, output: Some(j) })));
        }
    }
    Ok((Verdict::NoErrorFound, None))
}

/// The conjunction `cond = ⋀_j (g_j ↔ f_j)` over all outputs.
fn try_joint_condition(s: &mut ZiSetup) -> Result<Bdd, BudgetExceeded> {
    let mut cond = s.ctx.manager.constant(true);
    let pairs: Vec<(Bdd, Bdd)> =
        s.sym.outputs.iter().copied().zip(s.spec_bdds.iter().copied()).collect();
    let tracer = s.ctx.tracer().clone();
    for (j, (g, f)) in pairs.into_iter().enumerate() {
        let span = tracer.span("core.joint_output");
        span.set_attr("output", j);
        let c = s.ctx.manager.try_xnor(g, f)?;
        cond = s.ctx.manager.try_and(cond, c)?;
        span.set_attr("cond_nodes", s.ctx.manager.node_count(cond));
    }
    Ok(cond)
}

/// The **output-exact check** (Lemma 2.2): an error exists iff for some
/// input no single assignment to the box outputs satisfies *all* outputs at
/// once — `∃X ∀Z ⋁_j ¬cond_j`.
///
/// Detects the paper's Figure 3(a) class of errors (contradictory demands
/// on one box from different outputs), which the local check misses. Equal
/// in power to Günther et al. [9].
///
/// # Errors
///
/// [`CheckError::InterfaceMismatch`], [`CheckError::Netlist`], or
/// [`CheckError::BudgetExceeded`].
pub fn output_exact(
    spec: &Circuit,
    partial: &PartialCircuit,
    settings: &CheckSettings,
) -> Result<CheckOutcome, CheckError> {
    let mut owned = owned_setup(spec, settings)?;
    output_exact_with(&mut owned.ctx, &owned.spec_bdds, spec, partial)
}

pub(crate) fn output_exact_with(
    ctx: &mut SymbolicContext,
    spec_bdds: &[Bdd],
    spec: &Circuit,
    partial: &PartialCircuit,
) -> Result<CheckOutcome, CheckError> {
    let mut s = setup_in(ctx, spec_bdds, spec, partial)?;
    match output_exact_body(&mut s) {
        Ok((verdict, cex)) => {
            let reject = cex
                .as_ref()
                .and_then(|c| crate::cex::validate_counterexample(spec, partial, c).err());
            let outcome = s.finish(Method::OutputExact, verdict, cex);
            match reject {
                Some(detail) => {
                    Err(CheckError::CounterexampleRejected { method: Method::OutputExact, detail })
                }
                None => Ok(outcome),
            }
        }
        Err(e) => Err(s.abort(e)),
    }
}

fn output_exact_body(s: &mut ZiSetup) -> Result<(Verdict, Option<Counterexample>), BudgetExceeded> {
    let zcube = s.ctx.manager.try_cube(&s.sym.all_z_vars)?;
    s.guard.keep(s.ctx, zcube.as_bdd());
    let cond = try_joint_condition(s)?;
    // No error iff ∀X ∃Z cond — i.e. ∃Z cond is a tautology over X.
    let sat_exists = s.ctx.manager.try_exists(cond, zcube)?;
    match s.ctx.manager.any_unsat(sat_exists) {
        None => Ok((Verdict::NoErrorFound, None)),
        Some(a) => {
            let inputs = s.ctx.witness_inputs(&a);
            Ok((Verdict::ErrorFound, Some(Counterexample { inputs, output: None })))
        }
    }
}

/// The **input-exact check** (equation (1) of the paper): additionally
/// respects that each box can only observe its actual input pins.
///
/// Builds the box-input relations `H_j = ⋀_k (i_{j,k} ↔ h_{j,k})` over
/// fresh variables, forms
/// `cond' = ∀X (¬H_1 ∨ … ∨ ¬H_b ∨ cond)` and reports **no error** iff
/// `∀I_1 ∃O_1 … ∀I_b ∃O_b. cond'` is a tautology, boxes in topological
/// order.
///
/// For a single black box this criterion is *exact* (Theorem 2.2): "no
/// error" means a correct box implementation exists. For several boxes it
/// is the strongest of the paper's approximations.
///
/// # Errors
///
/// [`CheckError::InterfaceMismatch`], [`CheckError::Netlist`], or
/// [`CheckError::BudgetExceeded`].
pub fn input_exact(
    spec: &Circuit,
    partial: &PartialCircuit,
    settings: &CheckSettings,
) -> Result<CheckOutcome, CheckError> {
    let mut owned = owned_setup(spec, settings)?;
    input_exact_with(&mut owned.ctx, &owned.spec_bdds, spec, partial)
}

pub(crate) fn input_exact_with(
    ctx: &mut SymbolicContext,
    spec_bdds: &[Bdd],
    spec: &Circuit,
    partial: &PartialCircuit,
) -> Result<CheckOutcome, CheckError> {
    let mut s = setup_in(ctx, spec_bdds, spec, partial)?;
    match input_exact_body(&mut s, partial) {
        Ok(verdict) => Ok(s.finish(Method::InputExact, verdict, None)),
        Err(e) => Err(s.abort(e)),
    }
}

fn input_exact_body(s: &mut ZiSetup, partial: &PartialCircuit) -> Result<Verdict, BudgetExceeded> {
    let cond = try_joint_condition(s)?;
    s.guard.keep(s.ctx, cond);

    // Fresh variables for every box input pin.
    let mut i_vars_by_box = Vec::new();
    for b in partial.boxes() {
        let vars: Vec<_> = b.inputs.iter().map(|_| s.ctx.manager.new_var()).collect();
        i_vars_by_box.push(vars);
    }
    // cond' = ∀X (¬H_1 ∨ … ∨ ¬H_b ∨ cond), computed in its dual form
    // ¬ ∃X (⋀ factors ∧ ¬cond). The H relations are never materialised:
    // each equivalence factor `i_{j,k} ↔ h_{j,k}` is merged by a relational
    // product, and each input variable is quantified out as soon as the
    // last factor mentioning it has been merged (early quantification).
    // Every intermediate that must survive a reordering pass (which
    // garbage-collects) stays protected — tracked in the guard so a budget
    // abort releases them all.
    let input_vars: Vec<_> = s.ctx.input_vars().to_vec();
    let is_input_var: std::collections::HashSet<_> = input_vars.iter().copied().collect();
    // The equivalence factors in box order, plus each one's X-support.
    let mut factors: Vec<Bdd> = Vec::new();
    let mut factor_support: Vec<Vec<bbec_bdd::BddVar>> = Vec::new();
    for (bi, b) in partial.boxes().iter().enumerate() {
        for (k, &sig) in b.inputs.iter().enumerate() {
            let fun = s.sym.signal_bdds[sig.index()].expect("box inputs are driven or box outputs");
            let ivar = s.ctx.manager.var(i_vars_by_box[bi][k]);
            let eq = s.ctx.manager.try_xnor(ivar, fun)?;
            s.guard.keep(s.ctx, eq);
            factor_support.push(
                s.ctx
                    .manager
                    .support(eq)
                    .into_iter()
                    .filter(|v| is_input_var.contains(v))
                    .collect(),
            );
            factors.push(eq);
        }
    }
    // For each input variable, the last factor mentioning it; usize::MAX
    // means it appears in cond only and can be quantified immediately.
    let mut last_use: std::collections::HashMap<bbec_bdd::BddVar, usize> =
        input_vars.iter().map(|&v| (v, usize::MAX)).collect();
    for (fi, sup) in factor_support.iter().enumerate() {
        for v in sup {
            last_use.insert(*v, fi);
        }
    }
    let immediate: Vec<_> =
        input_vars.iter().copied().filter(|v| last_use[v] == usize::MAX).collect();
    let mut acc = {
        let ncond = s.ctx.manager.try_not(cond)?;
        let cube = s.ctx.manager.try_cube(&immediate)?;
        let r = s.ctx.manager.try_exists(ncond, cube)?;
        s.guard.keep(s.ctx, r)
    };
    s.ctx.manager.maybe_reorder();
    for (fi, &eq) in factors.iter().enumerate() {
        let ready: Vec<_> = input_vars.iter().copied().filter(|v| last_use[v] == fi).collect();
        let cube = s.ctx.manager.try_cube(&ready)?;
        let next = s.ctx.manager.try_and_exists(acc, eq, cube)?;
        s.guard.keep(s.ctx, next);
        s.guard.drop_one(s.ctx, acc);
        s.guard.drop_one(s.ctx, eq);
        acc = next;
        s.ctx.manager.maybe_reorder();
    }
    let mut result = {
        let r = s.ctx.manager.try_not(acc)?;
        s.guard.keep(s.ctx, r);
        s.guard.drop_one(s.ctx, acc);
        r
    };
    s.ctx.manager.maybe_reorder();
    // ∀I_1 ∃O_1 … ∀I_b ∃O_b, applied inside-out.
    for bi in (0..partial.boxes().len()).rev() {
        let o_cube = s.ctx.manager.try_cube(&s.sym.z_vars_by_box[bi])?;
        let after_o = s.ctx.manager.try_exists(result, o_cube)?;
        s.guard.keep(s.ctx, after_o);
        s.guard.drop_one(s.ctx, result);
        let i_cube = s.ctx.manager.try_cube(&i_vars_by_box[bi])?;
        let after_i = s.ctx.manager.try_forall(after_o, i_cube)?;
        s.guard.keep(s.ctx, after_i);
        s.guard.drop_one(s.ctx, after_o);
        result = after_i;
        s.ctx.manager.maybe_reorder();
    }
    Ok(if s.ctx.manager.is_tautology(result) { Verdict::NoErrorFound } else { Verdict::ErrorFound })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::samples;
    use crate::PartialCircuit;
    use bbec_netlist::generators;
    use bbec_netlist::mutate::Mutation;

    fn settings() -> CheckSettings {
        CheckSettings { dynamic_reordering: false, ..CheckSettings::default() }
    }

    #[test]
    fn clean_partials_pass_every_zi_check() {
        let c = generators::alu_181();
        let p = PartialCircuit::black_box_gates(&c, &[5, 6, 7]).unwrap();
        for check in [local_check, output_exact, input_exact] {
            let out = check(&c, &p, &settings()).unwrap();
            assert_eq!(out.verdict, Verdict::NoErrorFound);
            assert!(out.stats.apply_steps > 0, "telemetry must be recorded");
        }
    }

    #[test]
    fn local_beats_01x_on_fig2b() {
        let (spec, partial) = samples::detected_only_by_local();
        let out01x = crate::checks::symbolic_01x(&spec, &partial, &settings()).unwrap();
        assert_eq!(out01x.verdict, Verdict::NoErrorFound, "0,1,X must stay blind");
        let out = local_check(&spec, &partial, &settings()).unwrap();
        assert_eq!(out.verdict, Verdict::ErrorFound, "local check must see it");
        // Witness check: at the counterexample, g_j is Z-independent and
        // differs from the spec.
        let cex = out.counterexample.unwrap();
        let expect = spec.eval(&cex.inputs).unwrap();
        let tv: Vec<bbec_netlist::Tv> =
            cex.inputs.iter().map(|&b| bbec_netlist::Tv::from(b)).collect();
        let _ = (expect, tv); // values asserted structurally in samples tests
    }

    #[test]
    fn output_exact_beats_local_on_fig3a() {
        let (spec, partial) = samples::detected_only_by_output_exact();
        assert_eq!(
            local_check(&spec, &partial, &settings()).unwrap().verdict,
            Verdict::NoErrorFound,
            "local check must stay blind"
        );
        assert_eq!(
            output_exact(&spec, &partial, &settings()).unwrap().verdict,
            Verdict::ErrorFound
        );
    }

    #[test]
    fn input_exact_beats_output_exact_on_fig3b() {
        let (spec, partial) = samples::detected_only_by_input_exact();
        assert_eq!(
            output_exact(&spec, &partial, &settings()).unwrap().verdict,
            Verdict::NoErrorFound,
            "output-exact must stay blind"
        );
        assert_eq!(input_exact(&spec, &partial, &settings()).unwrap().verdict, Verdict::ErrorFound);
    }

    #[test]
    fn completable_two_box_sample_passes_all() {
        let (spec, partial) = samples::completable_pair();
        for check in [local_check, output_exact, input_exact] {
            assert_eq!(check(&spec, &partial, &settings()).unwrap().verdict, {
                Verdict::NoErrorFound
            });
        }
    }

    #[test]
    fn soundness_on_random_black_boxings() {
        // Black-boxing an *unmodified* spec is always completable, so no
        // check may ever report an error (the paper's soundness claim).
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(33);
        for seed in 0..6 {
            let c = generators::random_logic("s", 7, 45, 3, seed);
            for boxes in [1, 2, 3] {
                let Ok(p) = PartialCircuit::random_black_boxes(&c, 0.2, boxes, &mut rng) else {
                    continue;
                };
                for check in [local_check, output_exact, input_exact] {
                    let out = check(&c, &p, &settings()).unwrap();
                    assert_eq!(
                        out.verdict,
                        Verdict::NoErrorFound,
                        "false alarm with {boxes} boxes on seed {seed}"
                    );
                }
            }
        }
    }

    #[test]
    fn monotonicity_on_random_errors() {
        // If a weaker check errors, every stronger check must error too.
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(44);
        let c = generators::magnitude_comparator(5);
        let roots: Vec<_> = c.outputs().iter().map(|&(_, s)| s).collect();
        let cone = c.fanin_cone_gates(&roots);
        for _ in 0..10 {
            let m = Mutation::random(&c, &cone, &mut rng).unwrap();
            let faulty = m.apply(&c).unwrap();
            let Ok(p) = PartialCircuit::random_black_boxes(&faulty, 0.15, 2, &mut rng) else {
                continue;
            };
            let s = settings();
            let v01x = crate::checks::symbolic_01x(&c, &p, &s).unwrap().verdict;
            let vloc = local_check(&c, &p, &s).unwrap().verdict;
            let voe = output_exact(&c, &p, &s).unwrap().verdict;
            let vie = input_exact(&c, &p, &s).unwrap().verdict;
            let rank = |v: Verdict| u8::from(v == Verdict::ErrorFound);
            assert!(rank(v01x) <= rank(vloc), "{}", m.describe(&c));
            assert!(rank(vloc) <= rank(voe), "{}", m.describe(&c));
            assert!(rank(voe) <= rank(vie), "{}", m.describe(&c));
        }
    }

    #[test]
    fn output_exact_witness_is_genuine() {
        let (spec, partial) = samples::detected_only_by_output_exact();
        let out = output_exact(&spec, &partial, &settings()).unwrap();
        let cex = out.counterexample.expect("output-exact yields an input witness");
        // At this input, no box-output value satisfies all spec outputs:
        // verified by exhaustive enumeration over the single Z.
        let expect = spec.eval(&cex.inputs).unwrap();
        let mut satisfiable = false;
        'z: for z in [false, true] {
            // Evaluate the host with the box output forced to `z`.
            let got = samples::eval_with_fixed_boxes(&partial, &cex.inputs, &[z]);
            if got == expect {
                satisfiable = true;
                break 'z;
            }
        }
        assert!(!satisfiable, "witness must defeat every box behaviour");
    }

    #[test]
    fn budget_abort_releases_check_protections() {
        // A tiny step budget fires mid input-exact; afterwards the same
        // context footprint is restored by a GC (spec/impl protections
        // aside, nothing leaks).
        let c = generators::alu_181();
        let p = PartialCircuit::black_box_gates(&c, &[5, 6, 7]).unwrap();
        let s = CheckSettings {
            dynamic_reordering: false,
            step_limit: Some(200),
            ..CheckSettings::default()
        };
        let err = input_exact(&c, &p, &s).unwrap_err();
        match err {
            CheckError::BudgetExceeded(abort) => {
                let stats = abort.stats.expect("partial stats attached");
                assert!(stats.duration.as_nanos() > 0);
            }
            other => panic!("expected budget abort, got {other}"),
        }
    }
}
