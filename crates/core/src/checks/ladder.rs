//! The escalation strategy of the paper's conclusion: run the checks
//! cheapest-first and stop at the first error.
//!
//! A rung that exhausts its resource budget no longer sinks the whole
//! ladder: it is recorded as a [`StageResult::BudgetExceeded`] entry and
//! the ladder proceeds, so the final verdict is that of the strongest rung
//! that actually finished.

use crate::checks::{input_exact, local_check, output_exact, random_patterns, symbolic_01x};
use crate::partial::PartialCircuit;
use crate::report::{
    CheckError, CheckOutcome, CheckSettings, Counterexample, Method, ResourceStats, Verdict,
};
use crate::session::CheckSession;
use bbec_netlist::Circuit;
use std::time::{Duration, Instant};

/// Runs a configurable sequence of checks, stopping at the first error.
///
/// The default sequence is the paper's recommendation: "first use 0,1,X
/// based simulation with only a few random patterns, then symbolic 0,1,X
/// simulation, Z_i simulation with local check, with output exact check and
/// finally with input exact check." The SAT-based stages
/// ([`Method::SatDualRail`], [`Method::SatOutputExact`]) may be mixed in;
/// only [`Method::ExactDecomposition`] is excluded (it has its own entry
/// point with a table-size budget).
#[derive(Debug, Clone)]
pub struct CheckLadder {
    /// Shared settings for all stages.
    pub settings: CheckSettings,
    /// The stages, in execution order.
    pub stages: Vec<Method>,
    /// CEGAR refinement budget for [`Method::SatOutputExact`] stages.
    pub sat_refinement_budget: usize,
}

impl Default for CheckLadder {
    fn default() -> Self {
        CheckLadder {
            settings: CheckSettings::default(),
            stages: vec![
                Method::RandomPatterns,
                Method::Symbolic01X,
                Method::Local,
                Method::OutputExact,
                Method::InputExact,
            ],
            sat_refinement_budget: 100_000,
        }
    }
}

/// What happened to one rung of the ladder.
#[derive(Debug, Clone, PartialEq)]
pub enum StageResult {
    /// The rung ran to completion and produced a verdict.
    Finished(CheckOutcome),
    /// The rung exceeded its resource budget; the ladder carried on.
    BudgetExceeded {
        /// The method that was cut short.
        method: Method,
        /// Which limit fired.
        reason: String,
        /// Resources consumed up to the abort, when recorded.
        stats: Option<ResourceStats>,
        /// Wall-clock time the rung ran before the budget fired.
        elapsed: Duration,
    },
}

impl StageResult {
    /// The method this rung ran.
    pub fn method(&self) -> Method {
        match self {
            StageResult::Finished(o) => o.method,
            StageResult::BudgetExceeded { method, .. } => *method,
        }
    }

    /// Wall-clock time of the rung, whether it finished or was cut short.
    pub fn elapsed(&self) -> Duration {
        match self {
            StageResult::Finished(o) => o.stats.duration,
            StageResult::BudgetExceeded { elapsed, .. } => *elapsed,
        }
    }

    /// The outcome, when the rung finished.
    pub fn outcome(&self) -> Option<&CheckOutcome> {
        match self {
            StageResult::Finished(o) => Some(o),
            StageResult::BudgetExceeded { .. } => None,
        }
    }

    /// Whether this rung ran out of budget.
    pub fn is_budget_exceeded(&self) -> bool {
        matches!(self, StageResult::BudgetExceeded { .. })
    }
}

/// The trace of a ladder run: one entry per executed rung, including rungs
/// that ran out of budget.
#[derive(Debug, Clone, PartialEq)]
pub struct LadderReport {
    /// Result of each executed stage (stops after the first error).
    pub stages: Vec<StageResult>,
}

impl LadderReport {
    /// The outcomes of the rungs that finished, in execution order.
    pub fn outcomes(&self) -> impl Iterator<Item = &CheckOutcome> {
        self.stages.iter().filter_map(StageResult::outcome)
    }

    /// The overall verdict: an error iff some *finished* rung found one.
    /// Budget-exceeded rungs contribute nothing (the verdict is that of
    /// the strongest rung that completed).
    pub fn verdict(&self) -> Verdict {
        if self.outcomes().any(CheckOutcome::is_error) {
            Verdict::ErrorFound
        } else {
            Verdict::NoErrorFound
        }
    }

    /// The method that found the error, if any.
    pub fn deciding_method(&self) -> Option<Method> {
        self.outcomes().find(|o| o.is_error()).map(|o| o.method)
    }

    /// The counterexample of the deciding stage, if one was produced.
    pub fn counterexample(&self) -> Option<&Counterexample> {
        self.outcomes().find(|o| o.is_error()).and_then(|o| o.counterexample.as_ref())
    }

    /// The methods that ran out of budget, in execution order.
    pub fn budget_exceeded(&self) -> Vec<Method> {
        self.stages.iter().filter(|s| s.is_budget_exceeded()).map(StageResult::method).collect()
    }
}

impl CheckLadder {
    /// A ladder with default stages and the given settings.
    pub fn with_settings(settings: CheckSettings) -> Self {
        CheckLadder { settings, ..CheckLadder::default() }
    }

    /// Runs the stages in order, stopping at the first error.
    ///
    /// A rung that exceeds its resource budget is recorded in the report
    /// and the ladder continues with the next stage.
    ///
    /// # Errors
    ///
    /// Propagates the first non-budget stage failure ([`CheckError`]); a
    /// stage asking for [`Method::ExactDecomposition`] is rejected — it has
    /// its own entry point with extra parameters.
    pub fn run(
        &self,
        spec: &Circuit,
        partial: &PartialCircuit,
    ) -> Result<LadderReport, CheckError> {
        let mut stages = Vec::new();
        for &stage in &self.stages {
            let span = self.settings.tracer.span("core.ladder_rung");
            span.set_attr("method", stage.label());
            self.settings.progress.set_task(stage.label());
            let rung_start = Instant::now();
            let result = match stage {
                Method::RandomPatterns => random_patterns(spec, partial, &self.settings),
                Method::Symbolic01X => symbolic_01x(spec, partial, &self.settings),
                Method::Local => local_check(spec, partial, &self.settings),
                Method::OutputExact => output_exact(spec, partial, &self.settings),
                Method::InputExact => input_exact(spec, partial, &self.settings),
                Method::SatDualRail => {
                    crate::sat_checks::sat_dual_rail(spec, partial, &self.settings)
                }
                Method::SatOutputExact => crate::sat_checks::sat_output_exact(
                    spec,
                    partial,
                    &self.settings,
                    self.sat_refinement_budget,
                ),
                other => {
                    return Err(CheckError::InvalidPartial(format!(
                        "method {other} cannot run inside a ladder"
                    )))
                }
            };
            span.set_attr("budget_exceeded", matches!(&result, Err(CheckError::BudgetExceeded(_))));
            drop(span);
            if Self::push_stage(&mut stages, stage, result, rung_start.elapsed())? {
                break;
            }
        }
        Ok(LadderReport { stages })
    }

    /// Like [`CheckLadder::run`], but reuses a [`CheckSession`]'s
    /// specification BDDs across the BDD-based rungs. The session stays
    /// usable after budget-exceeded rungs — no refresh is triggered.
    ///
    /// # Errors
    ///
    /// As [`CheckLadder::run`]; the session's specification must match
    /// `spec` by construction (the session owns it).
    pub fn run_with_session(
        &self,
        session: &mut CheckSession,
        partial: &PartialCircuit,
    ) -> Result<LadderReport, CheckError> {
        let mut stages = Vec::new();
        for &stage in &self.stages {
            let span = self.settings.tracer.span("core.ladder_rung");
            span.set_attr("method", stage.label());
            self.settings.progress.set_task(stage.label());
            let rung_start = Instant::now();
            let result = match stage {
                Method::SatDualRail => {
                    crate::sat_checks::sat_dual_rail(session.spec(), partial, &self.settings)
                }
                Method::SatOutputExact => crate::sat_checks::sat_output_exact(
                    session.spec(),
                    partial,
                    &self.settings,
                    self.sat_refinement_budget,
                ),
                method => session.check(partial, method),
            };
            span.set_attr("budget_exceeded", matches!(&result, Err(CheckError::BudgetExceeded(_))));
            drop(span);
            if Self::push_stage(&mut stages, stage, result, rung_start.elapsed())? {
                break;
            }
        }
        Ok(LadderReport { stages })
    }

    /// Records one rung; returns `Ok(true)` when the ladder should stop.
    fn push_stage(
        stages: &mut Vec<StageResult>,
        method: Method,
        result: Result<CheckOutcome, CheckError>,
        elapsed: Duration,
    ) -> Result<bool, CheckError> {
        match result {
            Ok(outcome) => {
                let stop = outcome.is_error();
                stages.push(StageResult::Finished(outcome));
                Ok(stop)
            }
            Err(CheckError::BudgetExceeded(abort)) => {
                stages.push(StageResult::BudgetExceeded {
                    method,
                    reason: abort.reason,
                    stats: abort.stats,
                    elapsed,
                });
                Ok(false)
            }
            Err(e) => Err(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::samples;

    fn ladder() -> CheckLadder {
        let settings = CheckSettings {
            dynamic_reordering: false,
            random_patterns: 200,
            ..CheckSettings::default()
        };
        CheckLadder::with_settings(settings)
    }

    #[test]
    fn clean_design_runs_all_stages() {
        let (spec, partial) = samples::completable_pair();
        let report = ladder().run(&spec, &partial).unwrap();
        assert_eq!(report.verdict(), Verdict::NoErrorFound);
        assert_eq!(report.stages.len(), 5);
        assert_eq!(report.outcomes().count(), 5);
        assert_eq!(report.deciding_method(), None);
        assert!(report.budget_exceeded().is_empty());
    }

    #[test]
    fn stops_at_the_cheapest_sufficient_stage() {
        let (spec, partial) = samples::detected_only_by_local();
        let report = ladder().run(&spec, &partial).unwrap();
        assert_eq!(report.verdict(), Verdict::ErrorFound);
        assert_eq!(report.deciding_method(), Some(Method::Local));
        // 0,1,X ran and passed; nothing after the deciding stage ran.
        assert_eq!(report.stages.len(), 3);
    }

    #[test]
    fn escalates_to_input_exact_when_needed() {
        let (spec, partial) = samples::detected_only_by_input_exact();
        let report = ladder().run(&spec, &partial).unwrap();
        assert_eq!(report.deciding_method(), Some(Method::InputExact));
        assert_eq!(report.stages.len(), 5);
    }

    #[test]
    fn rejects_foreign_stages() {
        let (spec, partial) = samples::completable_pair();
        let mut l = ladder();
        l.stages = vec![Method::ExactDecomposition];
        assert!(l.run(&spec, &partial).is_err());
    }

    #[test]
    fn per_rung_telemetry_is_recorded() {
        let (spec, partial) = samples::completable_pair();
        let report = ladder().run(&spec, &partial).unwrap();
        for outcome in report.outcomes() {
            if outcome.method != Method::RandomPatterns {
                assert!(
                    outcome.stats.apply_steps > 0,
                    "{} must record apply steps",
                    outcome.method
                );
            }
        }
    }

    /// ISSUE satellite: a ladder whose input-exact rung exceeds a tiny step
    /// budget still reports the verdict of the strongest finished rung, and
    /// the same session answers a subsequent query without refreshing.
    #[test]
    fn budget_exceeded_rung_degrades_gracefully() {
        let (spec, partial) = samples::detected_only_by_input_exact();
        let base = CheckSettings {
            dynamic_reordering: false,
            random_patterns: 50,
            node_limit: None,
            ..CheckSettings::default()
        };

        // Calibrate: run the BDD rungs unbudgeted in ladder order and
        // record each rung's deterministic step cost (reordering is off, so
        // a second session charges the exact same step counts).
        let mut cal = CheckSession::new(spec.clone(), base.clone()).unwrap();
        let mut max_earlier = 0;
        for m in [Method::Symbolic01X, Method::Local, Method::OutputExact] {
            let out = cal.check(&partial, m).unwrap();
            max_earlier = max_earlier.max(out.stats.apply_steps);
        }
        let ie = cal.check(&partial, Method::InputExact).unwrap();
        assert_eq!(ie.verdict, Verdict::ErrorFound, "sample is detected only by input-exact");
        assert!(
            ie.stats.apply_steps > max_earlier,
            "input-exact must be the most expensive rung here"
        );

        // A step limit that admits every rung except input-exact.
        let tight = CheckSettings { step_limit: Some(max_earlier), ..base };
        let mut session = CheckSession::new(spec.clone(), tight.clone()).unwrap();
        let l = CheckLadder::with_settings(tight);
        let report = l.run_with_session(&mut session, &partial).unwrap();

        assert_eq!(report.stages.len(), 5);
        assert_eq!(report.budget_exceeded(), vec![Method::InputExact]);
        match &report.stages[4] {
            StageResult::BudgetExceeded { method: Method::InputExact, reason, stats, .. } => {
                assert!(reason.contains("step"), "reason: {reason}");
                assert!(stats.is_some(), "per-rung telemetry must survive the abort");
            }
            other => panic!("expected a budget-exceeded rung, got {other:?}"),
        }
        // The error is invisible to the finished rungs, so the degraded
        // verdict is "no error found" — from the strongest finished rung.
        assert_eq!(report.verdict(), Verdict::NoErrorFound);
        assert_eq!(report.deciding_method(), None);

        // The session survived the abort without a refresh and still
        // answers queries.
        let again = session.check(&partial, Method::OutputExact).unwrap();
        assert_eq!(again.verdict, Verdict::NoErrorFound);
        assert_eq!(session.refreshes(), 0, "budget abort must not force a refresh");
    }
}
