//! The escalation strategy of the paper's conclusion: run the checks
//! cheapest-first and stop at the first error.

use crate::checks::{input_exact, local_check, output_exact, random_patterns, symbolic_01x};
use crate::partial::PartialCircuit;
use crate::report::{CheckError, CheckOutcome, CheckSettings, Method, Verdict};
use bbec_netlist::Circuit;

/// Runs a configurable sequence of checks, stopping at the first error.
///
/// The default sequence is the paper's recommendation: "first use 0,1,X
/// based simulation with only a few random patterns, then symbolic 0,1,X
/// simulation, Z_i simulation with local check, with output exact check and
/// finally with input exact check." The SAT-based stages
/// ([`Method::SatDualRail`], [`Method::SatOutputExact`]) may be mixed in;
/// only [`Method::ExactDecomposition`] is excluded (it has its own entry
/// point with a table-size budget).
#[derive(Debug, Clone)]
pub struct CheckLadder {
    /// Shared settings for all stages.
    pub settings: CheckSettings,
    /// The stages, in execution order.
    pub stages: Vec<Method>,
    /// CEGAR refinement budget for [`Method::SatOutputExact`] stages.
    pub sat_refinement_budget: usize,
}

impl Default for CheckLadder {
    fn default() -> Self {
        CheckLadder {
            settings: CheckSettings::default(),
            stages: vec![
                Method::RandomPatterns,
                Method::Symbolic01X,
                Method::Local,
                Method::OutputExact,
                Method::InputExact,
            ],
            sat_refinement_budget: 100_000,
        }
    }
}

/// The trace of a ladder run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LadderReport {
    /// Outcome of each executed stage (stops after the first error).
    pub outcomes: Vec<CheckOutcome>,
}

impl LadderReport {
    /// The overall verdict.
    pub fn verdict(&self) -> Verdict {
        self.outcomes
            .last()
            .map(|o| o.verdict)
            .unwrap_or(Verdict::NoErrorFound)
    }

    /// The method that found the error, if any.
    pub fn deciding_method(&self) -> Option<Method> {
        self.outcomes.iter().find(|o| o.is_error()).map(|o| o.method)
    }

    /// The counterexample of the deciding stage, if one was produced.
    pub fn counterexample(&self) -> Option<&crate::report::Counterexample> {
        self.outcomes.iter().find(|o| o.is_error()).and_then(|o| o.counterexample.as_ref())
    }
}

impl CheckLadder {
    /// A ladder with default stages and the given settings.
    pub fn with_settings(settings: CheckSettings) -> Self {
        CheckLadder { settings, ..CheckLadder::default() }
    }

    /// Runs the stages in order, stopping at the first error.
    ///
    /// # Errors
    ///
    /// Propagates the first stage failure ([`CheckError`]); a stage asking
    /// for [`Method::ExactDecomposition`] or the SAT methods is rejected —
    /// those have their own entry points with extra parameters.
    pub fn run(
        &self,
        spec: &Circuit,
        partial: &PartialCircuit,
    ) -> Result<LadderReport, CheckError> {
        let mut outcomes = Vec::new();
        for &stage in &self.stages {
            let outcome = match stage {
                Method::RandomPatterns => random_patterns(spec, partial, &self.settings)?,
                Method::Symbolic01X => symbolic_01x(spec, partial, &self.settings)?,
                Method::Local => local_check(spec, partial, &self.settings)?,
                Method::OutputExact => output_exact(spec, partial, &self.settings)?,
                Method::InputExact => input_exact(spec, partial, &self.settings)?,
                Method::SatDualRail => {
                    crate::sat_checks::sat_dual_rail(spec, partial, &self.settings)?
                }
                Method::SatOutputExact => crate::sat_checks::sat_output_exact(
                    spec,
                    partial,
                    &self.settings,
                    self.sat_refinement_budget,
                )?,
                other => {
                    return Err(CheckError::InvalidPartial(format!(
                        "method {other} cannot run inside a ladder"
                    )))
                }
            };
            let stop = outcome.is_error();
            outcomes.push(outcome);
            if stop {
                break;
            }
        }
        Ok(LadderReport { outcomes })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::samples;

    fn ladder() -> CheckLadder {
        let settings = CheckSettings {
            dynamic_reordering: false,
            random_patterns: 200,
            ..CheckSettings::default()
        };
        CheckLadder::with_settings(settings)
    }

    #[test]
    fn clean_design_runs_all_stages() {
        let (spec, partial) = samples::completable_pair();
        let report = ladder().run(&spec, &partial).unwrap();
        assert_eq!(report.verdict(), Verdict::NoErrorFound);
        assert_eq!(report.outcomes.len(), 5);
        assert_eq!(report.deciding_method(), None);
    }

    #[test]
    fn stops_at_the_cheapest_sufficient_stage() {
        let (spec, partial) = samples::detected_only_by_local();
        let report = ladder().run(&spec, &partial).unwrap();
        assert_eq!(report.verdict(), Verdict::ErrorFound);
        assert_eq!(report.deciding_method(), Some(Method::Local));
        // 0,1,X ran and passed; nothing after the deciding stage ran.
        assert_eq!(report.outcomes.len(), 3);
    }

    #[test]
    fn escalates_to_input_exact_when_needed() {
        let (spec, partial) = samples::detected_only_by_input_exact();
        let report = ladder().run(&spec, &partial).unwrap();
        assert_eq!(report.deciding_method(), Some(Method::InputExact));
        assert_eq!(report.outcomes.len(), 5);
    }

    #[test]
    fn rejects_foreign_stages() {
        let (spec, partial) = samples::completable_pair();
        let mut l = ladder();
        l.stages = vec![Method::ExactDecomposition];
        assert!(l.run(&spec, &partial).is_err());
    }
}
