//! The non-symbolic baseline: 0,1,X simulation with random patterns
//! (column `r.p.` of the paper's tables).
//!
//! Patterns run through the bit-parallel dual-rail engine
//! ([`bbec_netlist::bitsim`]): 64 patterns per block, the specification on
//! the two-valued fast path and the partial implementation dual-rail with
//! black-box outputs injected as all-X lanes. The scalar reference
//! implementation ([`random_patterns_scalar`]) draws the *same* pattern
//! stream lane by lane, so verdicts are invariant between the two by
//! construction — the differential suite and the `sim_micro` benchmark
//! both lean on that.

use crate::checks::validate_interface;
use crate::partial::PartialCircuit;
use crate::report::{
    CheckError, CheckOutcome, CheckSettings, Counterexample, Method, ResourceStats, Verdict,
};
use bbec_netlist::bitsim::{self, BitSim};
use bbec_netlist::{Circuit, EvalScratch, Tv};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;

/// One 64-lane block of the shared pattern stream: one word per input,
/// lane `j` of word `i` is input `i` of pattern `block·64 + j`.
fn next_block(rng: &mut StdRng, words: &mut [u64]) {
    for w in words.iter_mut() {
        *w = rng.next_u64();
    }
}

/// Simulates `settings.random_patterns` random vectors through the partial
/// implementation in 0,1,X logic and compares definite outputs against the
/// specification.
///
/// An error is reported when some output is *definitely* wrong — i.e. wrong
/// no matter how the black boxes behave. This is the weakest (and with
/// large pattern counts, often the slowest) method of the paper; the
/// bit-parallel engine sweeps 64 patterns per topo walk to compensate.
///
/// # Errors
///
/// [`CheckError::InterfaceMismatch`] if spec and implementation interfaces
/// differ; [`CheckError::Netlist`] on simulation failures.
pub fn random_patterns(
    spec: &Circuit,
    partial: &PartialCircuit,
    settings: &CheckSettings,
) -> Result<CheckOutcome, CheckError> {
    validate_interface(spec, partial)?;
    let start = Instant::now();
    let mut rng = StdRng::seed_from_u64(settings.seed);
    let n = spec.inputs().len();
    let mut spec_sim = BitSim::new(spec);
    let mut impl_sim = BitSim::new(partial.circuit());
    let mut words = vec![0u64; n];
    let zero_xs = vec![0u64; n];
    let mut spec_out = vec![0u64; spec.outputs().len()];
    let total = settings.random_patterns as u64;
    let mut patterns = 0u64;
    let outcome = |verdict, counterexample, patterns, duration| CheckOutcome {
        method: Method::RandomPatterns,
        verdict,
        counterexample,
        stats: ResourceStats { duration, patterns, ..ResourceStats::default() },
    };
    while patterns < total {
        let lanes = bitsim::LANES.min((total - patterns) as usize);
        let live = bitsim::lane_mask(lanes);
        next_block(&mut rng, &mut words);
        spec_out.copy_from_slice(spec_sim.eval_block(&words)?);
        let (got_ones, got_xs) = impl_sim.eval_ternary_block(&words, &zero_xs)?;
        // Wrong = definite lane whose value differs from the spec's. The
        // witness is the first erring *pattern* (lowest lane across all
        // outputs), then the first erring output within it — the same scan
        // order as the scalar reference, so witnesses agree exactly.
        let mut any_wrong = 0u64;
        for (j, &expect) in spec_out.iter().enumerate() {
            any_wrong |= !got_xs[j] & (got_ones[j] ^ expect) & live;
        }
        if any_wrong != 0 {
            let lane = any_wrong.trailing_zeros() as usize;
            let j = spec_out
                .iter()
                .enumerate()
                .position(|(j, &expect)| bitsim::lane(!got_xs[j] & (got_ones[j] ^ expect), lane))
                .expect("some output is wrong at this lane");
            let inputs: Vec<bool> = words.iter().map(|&w| bitsim::lane(w, lane)).collect();
            let cex = Counterexample { inputs, output: Some(j) };
            crate::cex::validate_counterexample(spec, partial, &cex).map_err(|detail| {
                CheckError::CounterexampleRejected { method: Method::RandomPatterns, detail }
            })?;
            settings.tracer.counter_add("sim.patterns", patterns + lane as u64 + 1);
            return Ok(outcome(
                Verdict::ErrorFound,
                Some(cex),
                patterns + lane as u64 + 1,
                start.elapsed(),
            ));
        }
        patterns += lanes as u64;
    }
    settings.tracer.counter_add("sim.patterns", patterns);
    Ok(outcome(Verdict::NoErrorFound, None, patterns, start.elapsed()))
}

/// The scalar reference implementation of the random-pattern rung: one
/// pattern at a time through [`Circuit::eval_ternary_into`]/
/// [`Circuit::eval_into`], drawing the same pattern stream as
/// [`random_patterns`] so the two are verdict-invariant. Kept as the
/// differential baseline and the `sim_micro` speedup denominator.
///
/// # Errors
///
/// As [`random_patterns`].
pub fn random_patterns_scalar(
    spec: &Circuit,
    partial: &PartialCircuit,
    settings: &CheckSettings,
) -> Result<CheckOutcome, CheckError> {
    validate_interface(spec, partial)?;
    let start = Instant::now();
    let mut rng = StdRng::seed_from_u64(settings.seed);
    let n = spec.inputs().len();
    let mut words = vec![0u64; n];
    let mut scratch = EvalScratch::default();
    let mut inputs: Vec<bool> = vec![false; n];
    let mut tv: Vec<Tv> = vec![Tv::X; n];
    let mut got: Vec<Tv> = Vec::new();
    let mut expect: Vec<bool> = Vec::new();
    let total = settings.random_patterns as u64;
    let mut patterns = 0u64;
    let outcome = |verdict, counterexample, patterns, duration| CheckOutcome {
        method: Method::RandomPatterns,
        verdict,
        counterexample,
        stats: ResourceStats { duration, patterns, ..ResourceStats::default() },
    };
    while patterns < total {
        let lanes = bitsim::LANES.min((total - patterns) as usize);
        next_block(&mut rng, &mut words);
        for lane in 0..lanes {
            for (i, &w) in words.iter().enumerate() {
                inputs[i] = bitsim::lane(w, lane);
                tv[i] = Tv::from(inputs[i]);
            }
            partial.circuit().eval_ternary_into(&tv, &mut scratch, &mut got)?;
            spec.eval_into(&inputs, &mut scratch, &mut expect)?;
            for (j, (g, &e)) in got.iter().zip(&expect).enumerate() {
                if let Some(v) = g.to_bool() {
                    if v != e {
                        let cex = Counterexample { inputs: inputs.clone(), output: Some(j) };
                        crate::cex::validate_counterexample(spec, partial, &cex).map_err(
                            |detail| CheckError::CounterexampleRejected {
                                method: Method::RandomPatterns,
                                detail,
                            },
                        )?;
                        return Ok(outcome(
                            Verdict::ErrorFound,
                            Some(cex),
                            patterns + lane as u64 + 1,
                            start.elapsed(),
                        ));
                    }
                }
            }
        }
        patterns += lanes as u64;
    }
    Ok(outcome(Verdict::NoErrorFound, None, patterns, start.elapsed()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PartialCircuit;
    use bbec_netlist::generators;
    use bbec_netlist::mutate::{Mutation, MutationKind};

    fn fast_settings() -> CheckSettings {
        CheckSettings { random_patterns: 500, ..CheckSettings::default() }
    }

    #[test]
    fn clean_partial_passes() {
        let c = generators::ripple_carry_adder(4);
        let p = PartialCircuit::black_box_gates(&c, &[3, 4]).unwrap();
        let out = random_patterns(&c, &p, &fast_settings()).unwrap();
        assert_eq!(out.verdict, Verdict::NoErrorFound);
        assert_eq!(out.method, Method::RandomPatterns);
        assert_eq!(out.stats.patterns, 500);
    }

    #[test]
    fn gross_error_outside_box_is_caught() {
        let c = generators::ripple_carry_adder(4);
        // Invert the final carry output (gate far from the box).
        let last = (c.gates().len() - 1) as u32;
        let faulty =
            Mutation { gate: last, kind: MutationKind::ToggleOutputInverter }.apply(&c).unwrap();
        let p = PartialCircuit::black_box_gates(&faulty, &[0]).unwrap();
        let out = random_patterns(&c, &p, &fast_settings()).unwrap();
        assert_eq!(out.verdict, Verdict::ErrorFound);
        let cex = out.counterexample.expect("witness");
        // Verify the witness: the partial implementation's definite output
        // disagrees with the spec.
        let tv: Vec<bbec_netlist::Tv> =
            cex.inputs.iter().map(|&b| bbec_netlist::Tv::from(b)).collect();
        let got = p.circuit().eval_ternary(&tv).unwrap();
        let expect = c.eval(&cex.inputs).unwrap();
        let j = cex.output.unwrap();
        assert_eq!(got[j].to_bool(), Some(!expect[j]));
        assert!(out.stats.patterns >= 1);
    }

    #[test]
    fn error_hidden_behind_x_is_missed() {
        // An error whose effect always passes through the black box is
        // invisible to 0,1,X-based methods: outputs read X, never "wrong".
        let mut b = bbec_netlist::Circuit::builder("spec");
        let x = b.input("x");
        let y = b.input("y");
        let g = b.and2(x, y);
        let f = b.or2(g, x);
        b.output("f", f);
        let spec = b.build().unwrap();
        // Faulty copy: the AND became OR — but we black-box the OR gate
        // downstream, so every disagreement is masked by the box.
        let faulty = Mutation { gate: 0, kind: MutationKind::TypeChange }.apply(&spec).unwrap();
        let p = PartialCircuit::black_box_gates(&faulty, &[1]).unwrap();
        let out = random_patterns(&spec, &p, &fast_settings()).unwrap();
        assert_eq!(out.verdict, Verdict::NoErrorFound);
    }

    #[test]
    fn deterministic_in_seed() {
        let c = generators::magnitude_comparator(4);
        let p = PartialCircuit::black_box_gates(&c, &[0]).unwrap();
        let a = random_patterns(&c, &p, &fast_settings()).unwrap();
        let b = random_patterns(&c, &p, &fast_settings()).unwrap();
        assert_eq!(a.verdict, b.verdict);
    }

    #[test]
    fn packed_and_scalar_rungs_share_one_verdict() {
        // The clean, erroneous and X-masked fixtures above, plus mutated
        // generator circuits: verdicts (and pattern tallies on clean runs)
        // must agree between the packed engine and the scalar reference.
        let s = fast_settings();
        for seed in 0..12u64 {
            let c = generators::random_logic("rp", 7, 28, 3, seed);
            let host = if seed % 3 == 0 {
                let last = (c.gates().len() - 1) as u32;
                Mutation { gate: last, kind: MutationKind::ToggleOutputInverter }.apply(&c).unwrap()
            } else {
                c.clone()
            };
            let Ok(p) = PartialCircuit::black_box_gates(&host, &[1]) else { continue };
            let packed = random_patterns(&c, &p, &s).unwrap();
            let scalar = random_patterns_scalar(&c, &p, &s).unwrap();
            assert_eq!(packed.verdict, scalar.verdict, "seed {seed}");
            if packed.verdict == Verdict::NoErrorFound {
                assert_eq!(packed.stats.patterns, scalar.stats.patterns, "seed {seed}");
            }
        }
    }
}
