//! The non-symbolic baseline: 0,1,X simulation with random patterns
//! (column `r.p.` of the paper's tables).

use crate::checks::validate_interface;
use crate::partial::PartialCircuit;
use crate::report::{
    CheckError, CheckOutcome, CheckSettings, Counterexample, Method, ResourceStats, Verdict,
};
use bbec_netlist::{Circuit, Tv};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;

/// Simulates `settings.random_patterns` random vectors through the partial
/// implementation in 0,1,X logic and compares definite outputs against the
/// specification.
///
/// An error is reported when some output is *definitely* wrong — i.e. wrong
/// no matter how the black boxes behave. This is the weakest (and with
/// large pattern counts, often the slowest) method of the paper.
///
/// # Errors
///
/// [`CheckError::InterfaceMismatch`] if spec and implementation interfaces
/// differ; [`CheckError::Netlist`] on simulation failures.
pub fn random_patterns(
    spec: &Circuit,
    partial: &PartialCircuit,
    settings: &CheckSettings,
) -> Result<CheckOutcome, CheckError> {
    validate_interface(spec, partial)?;
    let start = Instant::now();
    let mut rng = StdRng::seed_from_u64(settings.seed);
    let n = spec.inputs().len();
    let outcome = |verdict, counterexample| CheckOutcome {
        method: Method::RandomPatterns,
        verdict,
        counterexample,
        stats: ResourceStats { duration: start.elapsed(), ..ResourceStats::default() },
    };
    for _ in 0..settings.random_patterns {
        let inputs: Vec<bool> = (0..n).map(|_| rng.random_bool(0.5)).collect();
        let tv: Vec<Tv> = inputs.iter().map(|&b| Tv::from(b)).collect();
        let got = partial.circuit().eval_ternary(&tv)?;
        let expect = spec.eval(&inputs)?;
        for (j, (g, &e)) in got.iter().zip(&expect).enumerate() {
            if let Some(v) = g.to_bool() {
                if v != e {
                    let cex = Counterexample { inputs, output: Some(j) };
                    crate::cex::validate_counterexample(spec, partial, &cex).map_err(|detail| {
                        CheckError::CounterexampleRejected {
                            method: Method::RandomPatterns,
                            detail,
                        }
                    })?;
                    return Ok(outcome(Verdict::ErrorFound, Some(cex)));
                }
            }
        }
    }
    Ok(outcome(Verdict::NoErrorFound, None))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PartialCircuit;
    use bbec_netlist::generators;
    use bbec_netlist::mutate::{Mutation, MutationKind};

    fn fast_settings() -> CheckSettings {
        CheckSettings { random_patterns: 500, ..CheckSettings::default() }
    }

    #[test]
    fn clean_partial_passes() {
        let c = generators::ripple_carry_adder(4);
        let p = PartialCircuit::black_box_gates(&c, &[3, 4]).unwrap();
        let out = random_patterns(&c, &p, &fast_settings()).unwrap();
        assert_eq!(out.verdict, Verdict::NoErrorFound);
        assert_eq!(out.method, Method::RandomPatterns);
    }

    #[test]
    fn gross_error_outside_box_is_caught() {
        let c = generators::ripple_carry_adder(4);
        // Invert the final carry output (gate far from the box).
        let last = (c.gates().len() - 1) as u32;
        let faulty =
            Mutation { gate: last, kind: MutationKind::ToggleOutputInverter }.apply(&c).unwrap();
        let p = PartialCircuit::black_box_gates(&faulty, &[0]).unwrap();
        let out = random_patterns(&c, &p, &fast_settings()).unwrap();
        assert_eq!(out.verdict, Verdict::ErrorFound);
        let cex = out.counterexample.expect("witness");
        // Verify the witness: the partial implementation's definite output
        // disagrees with the spec.
        let tv: Vec<bbec_netlist::Tv> =
            cex.inputs.iter().map(|&b| bbec_netlist::Tv::from(b)).collect();
        let got = p.circuit().eval_ternary(&tv).unwrap();
        let expect = c.eval(&cex.inputs).unwrap();
        let j = cex.output.unwrap();
        assert_eq!(got[j].to_bool(), Some(!expect[j]));
    }

    #[test]
    fn error_hidden_behind_x_is_missed() {
        // An error whose effect always passes through the black box is
        // invisible to 0,1,X-based methods: outputs read X, never "wrong".
        let mut b = bbec_netlist::Circuit::builder("spec");
        let x = b.input("x");
        let y = b.input("y");
        let g = b.and2(x, y);
        let f = b.or2(g, x);
        b.output("f", f);
        let spec = b.build().unwrap();
        // Faulty copy: the AND became OR — but we black-box the OR gate
        // downstream, so every disagreement is masked by the box.
        let faulty = Mutation { gate: 0, kind: MutationKind::TypeChange }.apply(&spec).unwrap();
        let p = PartialCircuit::black_box_gates(&faulty, &[1]).unwrap();
        let out = random_patterns(&spec, &p, &fast_settings()).unwrap();
        assert_eq!(out.verdict, Verdict::NoErrorFound);
    }

    #[test]
    fn deterministic_in_seed() {
        let c = generators::magnitude_comparator(4);
        let p = PartialCircuit::black_box_gates(&c, &[0]).unwrap();
        let a = random_patterns(&c, &p, &fast_settings()).unwrap();
        let b = random_patterns(&c, &p, &fast_settings()).unwrap();
        assert_eq!(a.verdict, b.verdict);
    }
}
