//! The exact criterion of Theorem 2.1, decided by brute force.
//!
//! The paper proves the general criterion NP-complete for two or more black
//! boxes and therefore uses equation (1) in practice. This module keeps the
//! exact criterion available for *tiny* boxes by enumerating all total box
//! functions — its purpose is validation: property tests use it to confirm
//! that the input-exact check is sound (never errs on a completable design)
//! and to exhibit multi-box cases where equation (1) is strictly
//! conservative.

use crate::checks::validate_interface;
use crate::partial::PartialCircuit;
use crate::report::{BudgetAbort, CheckError, CheckSettings, Method};
use bbec_netlist::Circuit;
use std::time::{Duration, Instant};

/// A complete truth table for one black box: `rows[input_minterm]` holds
/// the output bits, least-significant output first.
pub type BoxTable = Vec<Vec<bool>>;

/// Result of the exact decomposition check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExactOutcome {
    /// Tables completing the design, if it is completable.
    pub completion: Option<Vec<BoxTable>>,
    /// Number of candidate completions examined.
    pub candidates_tried: u64,
    pub duration: Duration,
}

impl ExactOutcome {
    /// `true` if some black-box implementation makes the design correct.
    pub fn is_completable(&self) -> bool {
        self.completion.is_some()
    }

    /// The paper's verdict convention: an error iff *no* completion exists.
    pub fn method(&self) -> Method {
        Method::ExactDecomposition
    }
}

/// Decides completability exactly by enumerating every total function for
/// every black box (Theorem 2.1 semantics) and simulating exhaustively.
///
/// # Errors
///
/// [`CheckError::BudgetExceeded`] unless
/// `Σ_boxes outputs·2^inputs ≤ max_table_bits` *and* the circuit has at
/// most 16 primary inputs; [`CheckError::InterfaceMismatch`] on interface
/// mismatches.
pub fn exact_decomposition(
    spec: &Circuit,
    partial: &PartialCircuit,
    _settings: &CheckSettings,
    max_table_bits: u32,
) -> Result<ExactOutcome, CheckError> {
    validate_interface(spec, partial)?;
    let start = Instant::now();
    let n = spec.inputs().len();
    if n > 16 {
        return Err(CheckError::BudgetExceeded(BudgetAbort::new(format!(
            "{n} primary inputs exceed the exhaustive-simulation limit of 16"
        ))));
    }
    let mut total_bits: u32 = 0;
    for b in partial.boxes() {
        if b.inputs.len() > 8 {
            return Err(CheckError::BudgetExceeded(BudgetAbort::new(format!(
                "box `{}` has {} inputs",
                b.name,
                b.inputs.len()
            ))));
        }
        total_bits = total_bits.saturating_add(b.outputs.len() as u32 * (1u32 << b.inputs.len()));
    }
    if total_bits > max_table_bits {
        return Err(CheckError::BudgetExceeded(BudgetAbort::new(format!(
            "{total_bits} truth-table bits exceed the budget of {max_table_bits}"
        ))));
    }

    // Precompute the specification's full response (one reusable scratch
    // buffer — no per-pattern allocation across the 2^n sweep).
    let mut scratch = bbec_netlist::EvalScratch::default();
    let spec_rows: Vec<Vec<bool>> = (0..1u32 << n)
        .map(|bits| {
            let inputs: Vec<bool> = (0..n).map(|i| bits >> i & 1 == 1).collect();
            let mut row = Vec::new();
            spec.eval_into(&inputs, &mut scratch, &mut row).expect("spec is complete");
            row
        })
        .collect();

    let mut candidates_tried = 0u64;
    'candidates: for candidate in 0u64..1u64 << total_bits {
        candidates_tried += 1;
        let tables = decode_tables(partial, candidate);
        for bits in 0..1u32 << n {
            let inputs: Vec<bool> = (0..n).map(|i| bits >> i & 1 == 1).collect();
            let got = eval_completed(partial, &tables, &inputs);
            if got != spec_rows[bits as usize] {
                continue 'candidates;
            }
        }
        return Ok(ExactOutcome {
            completion: Some(tables),
            candidates_tried,
            duration: start.elapsed(),
        });
    }
    Ok(ExactOutcome { completion: None, candidates_tried, duration: start.elapsed() })
}

/// Splits a packed candidate integer into per-box truth tables.
fn decode_tables(partial: &PartialCircuit, mut candidate: u64) -> Vec<BoxTable> {
    let mut tables = Vec::new();
    for b in partial.boxes() {
        let rows = 1usize << b.inputs.len();
        let mut table: BoxTable = Vec::with_capacity(rows);
        for _ in 0..rows {
            let mut row = Vec::with_capacity(b.outputs.len());
            for _ in 0..b.outputs.len() {
                row.push(candidate & 1 == 1);
                candidate >>= 1;
            }
            table.push(row);
        }
        tables.push(table);
    }
    tables
}

/// Evaluates the partial circuit with each box replaced by its truth table.
pub(crate) fn eval_completed(
    partial: &PartialCircuit,
    tables: &[BoxTable],
    inputs: &[bool],
) -> Vec<bool> {
    let circuit = partial.circuit();
    let mut values: Vec<Option<bool>> = vec![None; circuit.signal_count()];
    for (pos, &s) in circuit.inputs().iter().enumerate() {
        values[s.index()] = Some(inputs[pos]);
    }
    let mut gate_done = vec![false; circuit.gates().len()];
    let mut box_done = vec![false; partial.boxes().len()];
    loop {
        let mut progress = false;
        for (gi, gate) in circuit.gates().iter().enumerate() {
            if gate_done[gi] {
                continue;
            }
            if gate.inputs.iter().all(|s| values[s.index()].is_some()) {
                let ins: Vec<bool> =
                    gate.inputs.iter().map(|s| values[s.index()].expect("ready")).collect();
                values[gate.output.index()] = Some(gate.kind.eval(&ins));
                gate_done[gi] = true;
                progress = true;
            }
        }
        for (bi, b) in partial.boxes().iter().enumerate() {
            if box_done[bi] {
                continue;
            }
            if b.inputs.iter().all(|s| values[s.index()].is_some()) {
                let mut idx = 0usize;
                for (k, &s) in b.inputs.iter().enumerate() {
                    if values[s.index()].expect("ready") {
                        idx |= 1 << k;
                    }
                }
                for (k, &o) in b.outputs.iter().enumerate() {
                    values[o.index()] = Some(tables[bi][idx][k]);
                }
                box_done[bi] = true;
                progress = true;
            }
        }
        if !progress {
            break;
        }
    }
    circuit
        .outputs()
        .iter()
        .map(|&(_, s)| values[s.index()].expect("all outputs resolve in an acyclic design"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checks::{self, input_exact};
    use crate::report::Verdict;
    use crate::samples;
    use crate::PartialCircuit;
    use bbec_netlist::generators;

    fn settings() -> CheckSettings {
        CheckSettings { dynamic_reordering: false, ..CheckSettings::default() }
    }

    #[test]
    fn unmodified_black_boxing_is_completable() {
        let c = generators::ripple_carry_adder(2);
        let p = PartialCircuit::black_box_gates(&c, &[0, 2]).unwrap();
        let out = exact_decomposition(&c, &p, &settings(), 24).unwrap();
        assert!(out.is_completable());
        // And the found completion really works on a spot check.
        let tables = out.completion.unwrap();
        for bits in 0..32u32 {
            let inputs: Vec<bool> = (0..5).map(|i| bits >> i & 1 == 1).collect();
            assert_eq!(eval_completed(&p, &tables, &inputs), c.eval(&inputs).unwrap());
        }
    }

    #[test]
    fn sample_errors_are_not_completable() {
        for (spec, partial) in [
            samples::detected_only_by_local(),
            samples::detected_only_by_output_exact(),
            samples::detected_only_by_input_exact(),
        ] {
            let out = exact_decomposition(&spec, &partial, &settings(), 24).unwrap();
            assert!(!out.is_completable());
        }
    }

    #[test]
    fn agrees_with_input_exact_for_single_box() {
        // Theorem 2.2: with one box, the input-exact check is exact, so the
        // two must agree on every instance.
        use bbec_netlist::mutate::Mutation;
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(5);
        let mut checked = 0;
        for seed in 0..30 {
            let c = generators::random_logic("x", 5, 25, 2, seed);
            let roots: Vec<_> = c.outputs().iter().map(|&(_, s)| s).collect();
            let cone = c.fanin_cone_gates(&roots);
            let m = Mutation::random(&c, &cone, &mut rng).unwrap();
            let faulty = m.apply(&c).unwrap();
            // Black-box one random cone gate: small enough to brute-force.
            use rand::Rng as _;
            let g = cone[rng.random_range(0..cone.len())];
            let Ok(p) = PartialCircuit::black_box_gates(&faulty, &[g]) else {
                continue;
            };
            let Ok(exact) = exact_decomposition(&c, &p, &settings(), 20) else {
                continue; // box too large for the brute-force budget
            };
            checked += 1;
            let ie = input_exact(&c, &p, &settings()).unwrap();
            assert_eq!(
                ie.verdict == Verdict::NoErrorFound,
                exact.is_completable(),
                "disagreement on seed {seed}: {}",
                m.describe(&c)
            );
        }
        assert!(checked >= 5, "too few instances fit the brute-force budget ({checked})");
    }

    #[test]
    fn input_exact_is_sound_for_two_boxes() {
        // For ≥ 2 boxes equation (1) is an approximation, but it must stay
        // *sound*: whenever it reports an error, the brute-force criterion
        // of Theorem 2.1 must agree that no completion exists.
        use bbec_netlist::mutate::Mutation;
        use rand::rngs::StdRng;
        use rand::{Rng as _, SeedableRng};
        let mut rng = StdRng::seed_from_u64(17);
        let mut checked = 0;
        for seed in 0..40 {
            let c = generators::random_logic("tb", 5, 20, 2, seed);
            let roots: Vec<_> = c.outputs().iter().map(|&(_, s)| s).collect();
            let cone = c.fanin_cone_gates(&roots);
            let Some(m) = Mutation::random(&c, &cone, &mut rng) else {
                continue;
            };
            let faulty = m.apply(&c).unwrap();
            // Two single-gate boxes keep the brute force cheap.
            if cone.len() < 2 {
                continue;
            }
            let g1 = cone[rng.random_range(0..cone.len())];
            let g2 = cone[rng.random_range(0..cone.len())];
            if g1 == g2 {
                continue;
            }
            let Ok(p) = PartialCircuit::black_box_partition(&faulty, &[vec![g1], vec![g2]]) else {
                continue;
            };
            let Ok(exact) = exact_decomposition(&c, &p, &settings(), 18) else {
                continue;
            };
            checked += 1;
            let ie = input_exact(&c, &p, &settings()).unwrap().verdict;
            if ie == Verdict::ErrorFound {
                assert!(
                    !exact.is_completable(),
                    "eq. (1) unsound on seed {seed}: {}",
                    m.describe(&c)
                );
            }
            // (The reverse direction may legitimately disagree: eq. (1) is
            // incomplete for several boxes — that is Theorem 2.1's point.)
        }
        assert!(checked >= 8, "too few two-box instances fit the budget ({checked})");
    }

    /// A frozen witness (found by randomised search) that equation (1) is
    /// strictly weaker than Theorem 2.1 for two black boxes: the exact
    /// criterion proves no completion exists, yet the input-exact check
    /// reports no error. This is the behaviour the paper's NP-completeness
    /// result predicts — eq. (1) trades completeness for tractability.
    #[test]
    fn equation_one_is_strictly_incomplete_for_two_boxes() {
        use bbec_netlist::mutate::{Mutation, MutationKind};
        let c = generators::random_logic("gap", 4, 14, 2, 1);
        let faulty = Mutation { gate: 3, kind: MutationKind::TypeChange }
            .apply(&c)
            .expect("frozen mutation fits");
        let p = PartialCircuit::black_box_partition(&faulty, &[vec![5], vec![6]])
            .expect("frozen selection is valid");
        let exact = exact_decomposition(&c, &p, &settings(), 16).expect("tiny boxes");
        let ie = checks::input_exact(&c, &p, &settings()).unwrap().verdict;
        assert!(
            !exact.is_completable(),
            "the frozen instance must be genuinely uncompletable \
             (if this fails, the random_logic generator changed — re-run \
             crates/core/examples/gap_probe.rs to find a fresh witness)"
        );
        assert_eq!(
            ie,
            Verdict::NoErrorFound,
            "eq. (1) must under-report here — that is the point of the witness"
        );
        // The single-box view of each box alone is also blind, confirming
        // the gap is a genuine multi-box coordination effect.
    }

    #[test]
    fn budget_is_enforced() {
        let c = generators::magnitude_comparator(10);
        let p = PartialCircuit::black_box_gates(&c, &[0, 1, 2, 3]).unwrap();
        assert!(matches!(
            exact_decomposition(&c, &p, &settings(), 2),
            Err(CheckError::BudgetExceeded(_))
        ));
        let wide = generators::masked_alu14();
        let pw = PartialCircuit::black_box_gates(&wide, &[0]).unwrap();
        assert!(matches!(
            exact_decomposition(&wide, &pw, &settings(), 1000),
            Err(CheckError::BudgetExceeded(_))
        ));
    }
}
