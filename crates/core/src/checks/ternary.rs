//! Symbolic 0,1,X simulation (Section 2.1 of the paper).

use crate::checks::{validate_interface, CheckProbe, Guard};
use crate::partial::PartialCircuit;
use crate::report::{CheckError, CheckOutcome, CheckSettings, Counterexample, Method, Verdict};
use crate::symbolic::SymbolicContext;
use bbec_bdd::Bdd;
use bbec_netlist::Circuit;

/// Symbolic 0,1,X check: finds every input vector for which some output of
/// the partial implementation is definite *and* wrong.
///
/// Equal in power to the two-bit-encoding approach of Jain et al. [10] (the
/// paper proves the detection sets coincide); covers all errors the
/// random-pattern baseline can find, for *all* 2ⁿ vectors at once.
///
/// # Errors
///
/// [`CheckError::InterfaceMismatch`], [`CheckError::Netlist`], or
/// [`CheckError::BudgetExceeded`] when the configured resource budget runs
/// out (the manager stays usable).
pub fn symbolic_01x(
    spec: &Circuit,
    partial: &PartialCircuit,
    settings: &CheckSettings,
) -> Result<CheckOutcome, CheckError> {
    let mut ctx = SymbolicContext::new(spec, settings);
    let probe = CheckProbe::begin(&mut ctx);
    let spec_bdds = match ctx.build_outputs(spec) {
        Ok(b) => b,
        Err(e) => return Err(probe.annotate(&ctx, e)),
    };
    symbolic_01x_with(&mut ctx, &spec_bdds, spec, partial)
}

pub(crate) fn symbolic_01x_with(
    ctx: &mut SymbolicContext,
    spec_bdds: &[Bdd],
    spec: &Circuit,
    partial: &PartialCircuit,
) -> Result<CheckOutcome, CheckError> {
    validate_interface(spec, partial)?;
    let probe = CheckProbe::begin(ctx);
    let sim = match ctx.build_ternary(partial.circuit()) {
        Ok(sim) => sim,
        // The simulator released its own protections; attach partial stats.
        Err(e) => return Err(probe.annotate(ctx, e)),
    };
    let impl_nodes = {
        let mut roots: Vec<Bdd> = Vec::new();
        for t in &sim.outputs {
            roots.push(t.is0);
            roots.push(t.is1);
        }
        ctx.manager.node_count_many(&roots)
    };

    let mut verdict = Verdict::NoErrorFound;
    let mut counterexample = None;
    let scan = (|| -> Result<(), bbec_bdd::BudgetExceeded> {
        for (j, (t, &f)) in sim.outputs.iter().zip(spec_bdds).enumerate() {
            // Output definitely 1 where the spec is 0 …
            let nf = ctx.manager.try_not(f)?;
            let wrong1 = ctx.manager.try_and(t.is1, nf)?;
            // … or definitely 0 where the spec is 1.
            let wrong0 = ctx.manager.try_and(t.is0, f)?;
            let wrong = ctx.manager.try_or(wrong1, wrong0)?;
            if let Some(a) = ctx.manager.any_sat(wrong) {
                verdict = Verdict::ErrorFound;
                counterexample =
                    Some(Counterexample { inputs: ctx.witness_inputs(&a), output: Some(j) });
                break;
            }
        }
        Ok(())
    })();
    if let Err(e) = scan {
        sim.release(&mut ctx.manager);
        return Err(probe.abort(ctx, Guard::new(), e));
    }
    let stats = probe.stats(ctx, impl_nodes);
    sim.release(&mut ctx.manager);
    if let Some(cex) = &counterexample {
        crate::cex::validate_counterexample(spec, partial, cex).map_err(|detail| {
            CheckError::CounterexampleRejected { method: Method::Symbolic01X, detail }
        })?;
    }
    Ok(CheckOutcome { method: Method::Symbolic01X, verdict, counterexample, stats })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PartialCircuit;
    use bbec_netlist::generators;
    use bbec_netlist::mutate::{Mutation, MutationKind};

    fn settings() -> CheckSettings {
        CheckSettings { dynamic_reordering: false, ..CheckSettings::default() }
    }

    #[test]
    fn clean_partial_passes() {
        let c = generators::magnitude_comparator(4);
        let p = PartialCircuit::black_box_gates(&c, &[2, 3]).unwrap();
        let out = symbolic_01x(&c, &p, &settings()).unwrap();
        assert_eq!(out.verdict, Verdict::NoErrorFound);
        assert!(out.stats.impl_nodes > 0);
        assert!(out.stats.apply_steps > 0, "telemetry must be recorded");
    }

    #[test]
    fn error_found_with_valid_witness() {
        let c = generators::magnitude_comparator(4);
        let last = (c.gates().len() - 1) as u32;
        let faulty =
            Mutation { gate: last, kind: MutationKind::ToggleOutputInverter }.apply(&c).unwrap();
        let p = PartialCircuit::black_box_gates(&faulty, &[0]).unwrap();
        let out = symbolic_01x(&c, &p, &settings()).unwrap();
        assert_eq!(out.verdict, Verdict::ErrorFound);
        let cex = out.counterexample.expect("witness");
        let tv: Vec<bbec_netlist::Tv> =
            cex.inputs.iter().map(|&b| bbec_netlist::Tv::from(b)).collect();
        let got = p.circuit().eval_ternary(&tv).unwrap();
        let expect = c.eval(&cex.inputs).unwrap();
        let j = cex.output.unwrap();
        assert_eq!(got[j].to_bool(), Some(!expect[j]), "witness must show a definite mismatch");
    }

    #[test]
    fn finds_everything_random_patterns_finds() {
        // Subsumption on a batch of random mutations: whenever the pattern
        // check errors, the symbolic check must error too.
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let c = generators::random_logic("s", 8, 60, 4, 9);
        let mut rng = StdRng::seed_from_u64(21);
        let cone: Vec<u32> = {
            let roots: Vec<_> = c.outputs().iter().map(|&(_, s)| s).collect();
            c.fanin_cone_gates(&roots)
        };
        let quick =
            CheckSettings { random_patterns: 300, dynamic_reordering: false, ..Default::default() };
        for _ in 0..12 {
            let m = Mutation::random(&c, &cone, &mut rng).unwrap();
            let faulty = m.apply(&c).unwrap();
            let Ok(p) = PartialCircuit::random_black_boxes(&faulty, 0.1, 1, &mut rng) else {
                continue;
            };
            let rp = crate::checks::random_patterns(&c, &p, &quick).unwrap();
            let sym = symbolic_01x(&c, &p, &quick).unwrap();
            if rp.verdict == Verdict::ErrorFound {
                assert_eq!(sym.verdict, Verdict::ErrorFound, "{}", m.describe(&c));
            }
        }
    }

    #[test]
    fn xor_of_same_box_output_is_blind_spot() {
        // The paper's Figure 2(b) situation: Z ⊕ Z is 0, but 0,1,X
        // simulation computes X ⊕ X = X and stays blind.
        let (spec, partial) = crate::samples::detected_only_by_local();
        let out = symbolic_01x(&spec, &partial, &settings()).unwrap();
        assert_eq!(out.verdict, Verdict::NoErrorFound);
    }

    #[test]
    fn tiny_step_budget_aborts_with_stats() {
        let c = generators::magnitude_comparator(6);
        let p = PartialCircuit::black_box_gates(&c, &[2]).unwrap();
        let s = CheckSettings {
            dynamic_reordering: false,
            step_limit: Some(10),
            ..CheckSettings::default()
        };
        let err = symbolic_01x(&c, &p, &s).unwrap_err();
        match err {
            CheckError::BudgetExceeded(abort) => {
                assert!(abort.reason.contains("step"), "reason: {}", abort.reason);
                let stats = abort.stats.expect("partial stats attached");
                assert!(stats.apply_steps > 0);
            }
            other => panic!("expected budget abort, got {other}"),
        }
    }
}
