//! Engineered specimen circuits mirroring the paper's running examples.
//!
//! The netlists of Figures 1–3 are drawn in the paper rather than listed,
//! so these samples reproduce the *phenomena* the figures demonstrate — one
//! specimen per separation in the check ladder:
//!
//! * [`completable_pair`] — a two-box partial implementation that can still
//!   be completed (Figure 1),
//! * [`detected_by_01x`] — an error visible to plain 0,1,X simulation
//!   (Figure 2(a)),
//! * [`detected_only_by_local`] — a `Z ⊕ Z` reconvergence invisible to
//!   0,1,X but caught by the local check (Figure 2(b)),
//! * [`detected_only_by_output_exact`] — two outputs demanding
//!   contradictory box functions (Figure 3(a)),
//! * [`detected_only_by_input_exact`] — a box whose input cone lacks a
//!   needed primary input (Figure 3(b)).

use crate::partial::{BlackBox, PartialCircuit};
use bbec_netlist::Circuit;

/// Figure 1 analogue: a specification and a two-black-box partial
/// implementation that *can* be completed — every check must pass.
///
/// Spec: `f1 = x1 ∨ (x2 ∧ x3)`, `f2 = x4 ∨ x5`.
/// Partial: `f1 = x1 ∨ Z1` with `BB1(x2, x3)`, `f2 = Z2` with `BB2(x4, x5)`.
pub fn completable_pair() -> (Circuit, PartialCircuit) {
    let spec = {
        let mut b = Circuit::builder("fig1_spec");
        let x1 = b.input("x1");
        let x2 = b.input("x2");
        let x3 = b.input("x3");
        let x4 = b.input("x4");
        let x5 = b.input("x5");
        let t = b.and2(x2, x3);
        let f1 = b.or2(x1, t);
        let f2 = b.or2(x4, x5);
        b.output("f1", f1);
        b.output("f2", f2);
        b.build().expect("valid spec")
    };
    let (host, boxes) = {
        let mut b = Circuit::builder("fig1_partial");
        let x1 = b.input("x1");
        let x2 = b.input("x2");
        let x3 = b.input("x3");
        let x4 = b.input("x4");
        let x5 = b.input("x5");
        let z1 = b.signal("z1");
        let z2 = b.signal("z2");
        let f1 = b.or2(x1, z1);
        b.output("f1", f1);
        b.output("f2", z2);
        let host = b.build_allow_undriven().expect("valid partial host");
        let boxes = vec![
            BlackBox { name: "BB1".to_string(), inputs: vec![x2, x3], outputs: vec![z1] },
            BlackBox { name: "BB2".to_string(), inputs: vec![x4, x5], outputs: vec![z2] },
        ];
        (host, boxes)
    };
    let partial = PartialCircuit::new(host, boxes).expect("valid partial");
    (spec, partial)
}

/// Figure 2(a) analogue: a definite wrong value reaches an output, so even
/// 0,1,X simulation (and usually random patterns) finds the error.
///
/// Same spec as [`completable_pair`]; the OR feeding `f1` degenerated to an
/// AND: `f1 = x1 ∧ Z1`. For `x1 = 0` the implementation emits a definite 0
/// while the spec may demand 1.
pub fn detected_by_01x() -> (Circuit, PartialCircuit) {
    let (spec, _) = completable_pair();
    let (host, boxes) = {
        let mut b = Circuit::builder("fig2a_partial");
        let x1 = b.input("x1");
        let x2 = b.input("x2");
        let x3 = b.input("x3");
        let x4 = b.input("x4");
        let x5 = b.input("x5");
        let z1 = b.signal("z1");
        let z2 = b.signal("z2");
        let f1 = b.and2(x1, z1); // faulty: OR became AND
        b.output("f1", f1);
        b.output("f2", z2);
        let host = b.build_allow_undriven().expect("valid partial host");
        let boxes = vec![
            BlackBox { name: "BB1".to_string(), inputs: vec![x2, x3], outputs: vec![z1] },
            BlackBox { name: "BB2".to_string(), inputs: vec![x4, x5], outputs: vec![z2] },
        ];
        (host, boxes)
    };
    (spec, PartialCircuit::new(host, boxes).expect("valid partial"))
}

/// Figure 2(b) analogue: the faulty logic computes `x1 ∨ (Z ⊕ Z)`.
///
/// 0,1,X simulation sees `X ⊕ X = X` and stays blind; Z_i simulation knows
/// both XOR inputs carry the *same* unknown, simplifies `Z ⊕ Z` to 0 and
/// the local check convicts the design.
pub fn detected_only_by_local() -> (Circuit, PartialCircuit) {
    let spec = {
        let mut b = Circuit::builder("fig2b_spec");
        let x1 = b.input("x1");
        let x2 = b.input("x2");
        let x3 = b.input("x3");
        let t = b.and2(x2, x3);
        let f1 = b.or2(x1, t);
        b.output("f1", f1);
        b.output("f2", t);
        b.build().expect("valid spec")
    };
    let (host, boxes) = {
        let mut b = Circuit::builder("fig2b_partial");
        let x1 = b.input("x1");
        let x2 = b.input("x2");
        let x3 = b.input("x3");
        let z = b.signal("z");
        let zz = b.xor2(z, z); // the reconvergent unknown
        let f1 = b.or2(x1, zz);
        b.output("f1", f1);
        b.output("f2", z);
        let host = b.build_allow_undriven().expect("valid partial host");
        let boxes =
            vec![BlackBox { name: "BB1".to_string(), inputs: vec![x2, x3], outputs: vec![z] }];
        (host, boxes)
    };
    (spec, PartialCircuit::new(host, boxes).expect("valid partial"))
}

/// Figure 3(a) analogue: output 1 needs the box to compute `x1 ∧ x2`,
/// output 2 needs `x1 ⊕ x2` — individually fine (local check passes), but
/// no single box function satisfies both (output-exact convicts).
pub fn detected_only_by_output_exact() -> (Circuit, PartialCircuit) {
    let spec = {
        let mut b = Circuit::builder("fig3a_spec");
        let x1 = b.input("x1");
        let x2 = b.input("x2");
        let f1 = b.and2(x1, x2);
        let f2 = b.xor2(x1, x2);
        b.output("f1", f1);
        b.output("f2", f2);
        b.build().expect("valid spec")
    };
    let (host, boxes) = {
        let mut b = Circuit::builder("fig3a_partial");
        let x1 = b.input("x1");
        let x2 = b.input("x2");
        let z = b.signal("z");
        b.output("f1", z);
        b.output("f2", z);
        let host = b.build_allow_undriven().expect("valid partial host");
        let boxes =
            vec![BlackBox { name: "BB1".to_string(), inputs: vec![x1, x2], outputs: vec![z] }];
        (host, boxes)
    };
    (spec, PartialCircuit::new(host, boxes).expect("valid partial"))
}

/// Figure 3(b) analogue: the spec output depends on `c`, but the box sees
/// only `a` and `b`. Per input vector a good box value always exists
/// (output-exact passes), yet no *function of (a, b)* works (input-exact
/// convicts).
pub fn detected_only_by_input_exact() -> (Circuit, PartialCircuit) {
    let spec = {
        let mut b = Circuit::builder("fig3b_spec");
        let a = b.input("a");
        let bb = b.input("b");
        let c = b.input("c");
        let t = b.or2(a, bb);
        let f = b.and2(c, t);
        b.output("f", f);
        b.build().expect("valid spec")
    };
    let (host, boxes) = {
        let mut b = Circuit::builder("fig3b_partial");
        let a = b.input("a");
        let bb = b.input("b");
        let c = b.input("c");
        let _ = c;
        let z = b.signal("z");
        b.output("f", z);
        let host = b.build_allow_undriven().expect("valid partial host");
        let boxes =
            vec![BlackBox { name: "BB1".to_string(), inputs: vec![a, bb], outputs: vec![z] }];
        (host, boxes)
    };
    (spec, PartialCircuit::new(host, boxes).expect("valid partial"))
}

/// Evaluates a partial circuit with every black-box output forced to a
/// constant (`z_values` in [`PartialCircuit::box_outputs`] order) — a
/// counterexample-verification helper for tests and examples.
///
/// # Panics
///
/// Panics if `z_values` does not match the number of box outputs.
pub fn eval_with_fixed_boxes(
    partial: &PartialCircuit,
    inputs: &[bool],
    z_values: &[bool],
) -> Vec<bool> {
    let circuit = partial.circuit();
    let box_outputs = partial.box_outputs();
    assert_eq!(box_outputs.len(), z_values.len(), "one value per box output");
    let mut values: Vec<Option<bool>> = vec![None; circuit.signal_count()];
    for (pos, &s) in circuit.inputs().iter().enumerate() {
        values[s.index()] = Some(inputs[pos]);
    }
    for (&s, &v) in box_outputs.iter().zip(z_values) {
        values[s.index()] = Some(v);
    }
    for &g in circuit.topo_order() {
        let gate = &circuit.gates()[g as usize];
        let ins: Vec<bool> =
            gate.inputs.iter().map(|s| values[s.index()].expect("sources set")).collect();
        values[gate.output.index()] = Some(gate.kind.eval(&ins));
    }
    circuit.outputs().iter().map(|&(_, s)| values[s.index()].expect("driven")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checks;
    use crate::report::{CheckSettings, Verdict};

    fn settings() -> CheckSettings {
        CheckSettings {
            dynamic_reordering: false,
            random_patterns: 300,
            ..CheckSettings::default()
        }
    }

    /// The ladder position each sample is engineered to occupy.
    #[test]
    fn samples_realise_the_exact_separations() {
        let s = settings();
        type CheckFn = fn(
            &Circuit,
            &PartialCircuit,
            &CheckSettings,
        ) -> Result<crate::CheckOutcome, crate::CheckError>;
        let methods: [(&str, CheckFn); 4] = [
            ("01x", checks::symbolic_01x as CheckFn),
            ("local", checks::local_check as CheckFn),
            ("oe", checks::output_exact as CheckFn),
            ("ie", checks::input_exact as CheckFn),
        ];
        // Each row: (sample, index of the first method that must convict).
        let table: Vec<((Circuit, PartialCircuit), Option<usize>)> = vec![
            (completable_pair(), None),
            (detected_by_01x(), Some(0)),
            (detected_only_by_local(), Some(1)),
            (detected_only_by_output_exact(), Some(2)),
            (detected_only_by_input_exact(), Some(3)),
        ];
        for (row, ((spec, partial), first_detecting)) in table.into_iter().enumerate() {
            for (mi, (name, check)) in methods.iter().enumerate() {
                let verdict = check(&spec, &partial, &s).unwrap().verdict;
                let expect = match first_detecting {
                    Some(first) if mi >= first => Verdict::ErrorFound,
                    _ => Verdict::NoErrorFound,
                };
                assert_eq!(verdict, expect, "sample {row}, method {name}");
            }
        }
    }

    #[test]
    fn completable_pair_has_a_real_completion() {
        let (spec, partial) = completable_pair();
        // BB1 := x2∧x3, BB2 := x4∨x5 completes the design: check by
        // exhaustive table-based evaluation.
        for bits in 0..32u32 {
            let inputs: Vec<bool> = (0..5).map(|i| bits >> i & 1 == 1).collect();
            let z1 = inputs[1] && inputs[2];
            let z2 = inputs[3] || inputs[4];
            let got = eval_with_fixed_boxes(&partial, &inputs, &[z1, z2]);
            assert_eq!(got, spec.eval(&inputs).unwrap(), "bits {bits:05b}");
        }
    }

    #[test]
    fn random_patterns_catch_the_01x_sample() {
        let (spec, partial) = detected_by_01x();
        let out = checks::random_patterns(&spec, &partial, &settings()).unwrap();
        assert_eq!(out.verdict, Verdict::ErrorFound);
    }

    #[test]
    fn fixed_box_evaluation_matches_ternary_on_definite_outputs() {
        let (_, partial) = completable_pair();
        let inputs = [true, false, true, false, false];
        let tv: Vec<bbec_netlist::Tv> = inputs.iter().map(|&b| b.into()).collect();
        let ternary = partial.circuit().eval_ternary(&tv).unwrap();
        for z in [[false, false], [true, false], [false, true], [true, true]] {
            let concrete = eval_with_fixed_boxes(&partial, &inputs, &z);
            for (t, c) in ternary.iter().zip(&concrete) {
                if let Some(v) = t.to_bool() {
                    assert_eq!(v, *c);
                }
            }
        }
    }
}
