//! Symbolic simulation: from netlists to BDDs.
//!
//! Three flavours, mirroring the paper:
//!
//! * plain simulation of complete circuits (the specification's `f_j`),
//! * **Z_i simulation** of partial circuits — every black-box output becomes
//!   a fresh BDD variable `Z_i` (Section 2.2),
//! * **0,1,X simulation** — each signal is a pair `(is0, is1)` of BDDs over
//!   the primary inputs; `X` is the state where both are false
//!   (Section 2.1; equivalent to an MTBDD with terminals {0,1,X}).

use crate::partial::PartialCircuit;
use crate::report::{CheckError, CheckSettings};
use bbec_bdd::{
    AnyManager, Bdd, BddManager, BddVar, Budget, ReorderSettings, SatAssignment, SharedConfig,
    SharedManager,
};
use bbec_netlist::{Circuit, GateKind, SignalId};
use std::time::{Duration, Instant};

/// A ternary signal value encoded as two BDDs over the primary inputs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TernaryBdd {
    /// Characteristic function of "this signal is definitely 0".
    pub is0: Bdd,
    /// Characteristic function of "this signal is definitely 1".
    pub is1: Bdd,
}

/// The result of Z_i simulation of a partial circuit.
#[derive(Debug, Clone)]
pub struct PartialSymbolic {
    /// `g_j`: one BDD per primary output, over input and Z variables.
    pub outputs: Vec<Bdd>,
    /// The Z variables, grouped per box (paper's `O_j`), boxes in
    /// topological order.
    pub z_vars_by_box: Vec<Vec<BddVar>>,
    /// All Z variables flattened.
    pub all_z_vars: Vec<BddVar>,
    /// BDD of every host-circuit signal (the `h` functions of the
    /// input-exact check are the entries for box-input signals).
    pub signal_bdds: Vec<Option<Bdd>>,
}

/// The result of 0,1,X simulation: output pairs plus the protections the
/// simulation took, so the caller can release them when done.
#[derive(Debug, Clone)]
pub struct TernarySim {
    /// One `(is0, is1)` pair per primary output.
    pub outputs: Vec<TernaryBdd>,
    /// Every handle the simulation protected (released by
    /// [`TernarySim::release`]).
    protected: Vec<Bdd>,
}

impl TernarySim {
    /// Releases every protection the simulation took.
    pub fn release(self, manager: &mut AnyManager) {
        for f in self.protected {
            manager.release(f);
        }
    }
}

/// A BDD manager wired to a circuit interface: one variable per primary
/// input, allocated in a fanin-first (DFS) static order.
#[derive(Debug)]
pub struct SymbolicContext {
    /// The underlying manager; exposed so checks can run further operations.
    /// [`CheckSettings::bdd_threads`] picks the engine inside: the classic
    /// single-threaded manager, or the shared-memory work-stealing one.
    pub manager: AnyManager,
    input_vars: Vec<BddVar>,
    node_limit: Option<usize>,
    step_limit: Option<u64>,
    time_limit: Option<Duration>,
    /// Absolute run deadline ([`CheckSettings::deadline`]); unlike
    /// `time_limit` it is *not* restarted by [`SymbolicContext::arm_budget`].
    deadline: Option<Instant>,
    /// Warm pool the manager came from ([`CheckSettings::pool`]); the
    /// manager is recycled back on drop.
    pool: Option<bbec_bdd::ManagerPool>,
}

impl Drop for SymbolicContext {
    fn drop(&mut self) {
        if let Some(pool) = self.pool.take() {
            match std::mem::take(&mut self.manager) {
                AnyManager::Classic(m) => pool.recycle(m),
                AnyManager::Shared(m) => pool.recycle_shared(m),
            }
        }
    }
}

impl SymbolicContext {
    /// Creates a context for circuits with `reference`'s input interface.
    ///
    /// The static variable order interleaves inputs by a depth-first walk
    /// from the outputs (a standard netlist ordering heuristic); dynamic
    /// reordering is enabled according to `settings`.
    ///
    /// With [`CheckSettings::pool`] set, the manager is acquired from the
    /// warm pool instead of constructed — recycled managers have been
    /// [`BddManager::reset`] and behave bit-identically to fresh ones, so
    /// the pool never changes a verdict, only the allocation ramp-up.
    pub fn new(reference: &Circuit, settings: &CheckSettings) -> SymbolicContext {
        let mut manager = if settings.bdd_threads >= 2 {
            // Shared-memory engine: canonical BDDs make every verdict
            // bit-identical to the classic engine's, so the thread count is
            // a pure performance knob. The shared table is insert-only and
            // never reorders, so `dynamic_reordering` is ignored here.
            let config = SharedConfig::for_check(
                settings.bdd_threads,
                settings.node_limit,
                settings.cache_bits,
            );
            AnyManager::Shared(match &settings.pool {
                Some(pool) => pool.acquire_shared(config),
                None => SharedManager::new(config),
            })
        } else {
            let reorder = ReorderSettings {
                threshold: settings.reorder_threshold,
                enabled: settings.dynamic_reordering,
                ..ReorderSettings::default()
            };
            AnyManager::Classic(match &settings.pool {
                Some(pool) => {
                    let mut m = pool.acquire();
                    m.set_reorder_settings(reorder);
                    m
                }
                None if settings.dynamic_reordering => BddManager::with_reordering(reorder),
                None => BddManager::new(),
            })
        };
        manager.set_tracer(settings.tracer.clone());
        manager.set_progress(settings.progress.clone());
        manager.set_cache_capacity_bits(settings.cache_bits);
        let order = dfs_input_order(reference);
        let mut input_vars = vec![None; reference.inputs().len()];
        for pos in order {
            input_vars[pos] = Some(manager.new_var());
        }
        let input_vars: Vec<BddVar> =
            input_vars.into_iter().map(|v| v.expect("all inputs ordered")).collect();
        let mut ctx = SymbolicContext {
            manager,
            input_vars,
            node_limit: settings.node_limit,
            step_limit: settings.step_limit,
            time_limit: settings.time_limit,
            deadline: settings.deadline,
            pool: settings.pool.clone(),
        };
        ctx.arm_budget();
        ctx
    }

    /// (Re-)arms the resource governor: opens a fresh step window and, when
    /// a time limit is configured, starts its deadline **now**. Checks call
    /// this at the start of each run so every check gets the full budget.
    ///
    /// The absolute [`CheckSettings::deadline`] is deliberately *not*
    /// restarted: re-arming per check (or per shard worker) keeps the
    /// earliest of `now + time_limit` and the fixed global deadline, so a
    /// worker spawned late in the run still honors the run-wide wall-clock
    /// limit instead of receiving a fresh window.
    pub fn arm_budget(&mut self) {
        if self.node_limit.is_none()
            && self.step_limit.is_none()
            && self.time_limit.is_none()
            && self.deadline.is_none()
        {
            self.manager.set_budget(None);
            return;
        }
        let window_deadline = self.time_limit.map(|d| Instant::now() + d);
        let deadline = match (window_deadline, self.deadline) {
            (Some(w), Some(g)) => Some(w.min(g)),
            (w, g) => w.or(g),
        };
        self.manager.set_budget(Some(Budget {
            max_live_nodes: self.node_limit,
            max_steps: self.step_limit,
            deadline,
        }));
    }

    /// The BDD variable of each primary input, in declaration order.
    pub fn input_vars(&self) -> &[BddVar] {
        &self.input_vars
    }

    /// The observability sink this context (and its manager) reports to.
    pub fn tracer(&self) -> &bbec_trace::Tracer {
        self.manager.tracer()
    }

    /// Builds the output BDDs of a complete circuit (the spec's `f_j`).
    ///
    /// # Errors
    ///
    /// [`CheckError::Netlist`] if an output cone contains undriven signals —
    /// use [`SymbolicContext::build_partial`] for partial circuits.
    pub fn build_outputs(&mut self, circuit: &Circuit) -> Result<Vec<Bdd>, CheckError> {
        let signals = self.simulate(circuit, |_, _| None)?;
        circuit
            .outputs()
            .iter()
            .map(|&(ref name, s)| {
                signals[s.index()].ok_or_else(|| {
                    CheckError::Netlist(bbec_netlist::NetlistError::Undriven(name.clone()))
                })
            })
            .collect()
    }

    /// Z_i simulation: builds the partial implementation's `g_j` with one
    /// fresh variable per black-box output.
    ///
    /// # Errors
    ///
    /// [`CheckError::BudgetExceeded`] if the armed budget runs out; the
    /// manager stays usable and this simulation's protections are released.
    pub fn build_partial(
        &mut self,
        partial: &PartialCircuit,
    ) -> Result<PartialSymbolic, CheckError> {
        // Allocate Z variables per box, in topological box order.
        let mut z_vars_by_box = Vec::new();
        let mut all_z_vars = Vec::new();
        let mut z_of_signal: Vec<Option<BddVar>> = vec![None; partial.circuit().signal_count()];
        for b in partial.boxes() {
            let vars: Vec<BddVar> = b
                .outputs
                .iter()
                .map(|&o| {
                    let v = self.manager.new_var();
                    z_of_signal[o.index()] = Some(v);
                    v
                })
                .collect();
            all_z_vars.extend(&vars);
            z_vars_by_box.push(vars);
        }
        let signals =
            self.simulate(partial.circuit(), |m, s| z_of_signal[s.index()].map(|v| m.var(v)))?;
        let outputs = partial
            .circuit()
            .outputs()
            .iter()
            .map(|&(_, s)| signals[s.index()].expect("outputs driven or boxed"))
            .collect();
        Ok(PartialSymbolic { outputs, z_vars_by_box, all_z_vars, signal_bdds: signals })
    }

    /// Symbolic 0,1,X simulation of a partial circuit: black-box outputs
    /// start as `X`, and every signal's `(is0, is1)` pair is computed over
    /// the primary input variables only.
    ///
    /// # Errors
    ///
    /// [`CheckError::BudgetExceeded`] if the armed budget runs out; the
    /// manager stays usable and this simulation's protections are released.
    pub fn build_ternary(&mut self, circuit: &Circuit) -> Result<TernarySim, CheckError> {
        let tracer = self.manager.tracer().clone();
        let span = tracer.span("core.sim01x");
        span.set_attr("circuit", circuit.name());
        span.set_attr("gates", circuit.topo_order().len());
        let false_ = self.manager.constant(false);
        let x_value = TernaryBdd { is0: false_, is1: false_ };
        let mut signals: Vec<TernaryBdd> = vec![x_value; circuit.signal_count()];
        let mut protected: Vec<Bdd> = Vec::new();
        for (pos, &s) in circuit.inputs().iter().enumerate() {
            let v = self.manager.var(self.input_vars[pos]);
            // Protect the negated rail: reordering garbage-collects.
            let nv = self.manager.not(v);
            self.manager.protect(nv);
            protected.push(nv);
            signals[s.index()] = TernaryBdd { is0: nv, is1: v };
        }
        let mut inputs_buf: Vec<TernaryBdd> = Vec::new();
        for &g in circuit.topo_order() {
            let gate = &circuit.gates()[g as usize];
            inputs_buf.clear();
            inputs_buf.extend(gate.inputs.iter().map(|&s| signals[s.index()]));
            let out = match self.try_eval_ternary_gate(gate.kind, &inputs_buf) {
                Ok(out) => out,
                Err(e) => {
                    for f in protected {
                        self.manager.release(f);
                    }
                    return Err(e.into());
                }
            };
            self.manager.protect(out.is0);
            self.manager.protect(out.is1);
            protected.push(out.is0);
            protected.push(out.is1);
            signals[gate.output.index()] = out;
            if tracer.enabled() {
                // Wavefront progress: one tick per simulated gate.
                tracer.counter_add("core.sim.gates", 1);
            }
            self.manager.maybe_reorder();
        }
        let outputs = circuit.outputs().iter().map(|&(_, s)| signals[s.index()]).collect();
        Ok(TernarySim { outputs, protected })
    }

    /// Maps a BDD satisfying assignment back to a primary-input vector.
    pub fn witness_inputs(&self, assignment: &SatAssignment) -> Vec<bool> {
        self.input_vars.iter().map(|&v| assignment.value(v).unwrap_or(false)).collect()
    }

    /// Core simulation loop; `leaf` supplies BDDs for undriven signals.
    ///
    /// On success every computed signal is left protected (h functions and
    /// outputs must survive the garbage collections that reordering
    /// performs). On a budget abort, this loop's protections are released
    /// before the error propagates, leaving the manager as it was.
    fn simulate(
        &mut self,
        circuit: &Circuit,
        leaf: impl Fn(&mut AnyManager, SignalId) -> Option<Bdd>,
    ) -> Result<Vec<Option<Bdd>>, CheckError> {
        let tracer = self.manager.tracer().clone();
        let span = tracer.span("core.sim");
        span.set_attr("circuit", circuit.name());
        span.set_attr("gates", circuit.topo_order().len());
        let mut signals: Vec<Option<Bdd>> = vec![None; circuit.signal_count()];
        for (pos, &s) in circuit.inputs().iter().enumerate() {
            signals[s.index()] = Some(self.manager.var(self.input_vars[pos]));
        }
        for s in circuit.undriven_signals() {
            signals[s.index()] = leaf(&mut self.manager, s);
        }
        let mut protected: Vec<Bdd> = Vec::new();
        let mut buf: Vec<Bdd> = Vec::new();
        for &g in circuit.topo_order() {
            let gate = &circuit.gates()[g as usize];
            buf.clear();
            for &inp in &gate.inputs {
                match signals[inp.index()] {
                    Some(b) => buf.push(b),
                    None => {
                        return Err(CheckError::Netlist(bbec_netlist::NetlistError::Undriven(
                            circuit.signal_name(inp).to_string(),
                        )))
                    }
                }
            }
            let out = match self.try_eval_gate(gate.kind, &buf) {
                Ok(out) => out,
                Err(e) => {
                    for f in protected {
                        self.manager.release(f);
                    }
                    return Err(e.into());
                }
            };
            self.manager.protect(out);
            protected.push(out);
            signals[gate.output.index()] = Some(out);
            if tracer.enabled() {
                // Wavefront progress: one tick per simulated gate.
                tracer.counter_add("core.sim.gates", 1);
            }
            self.manager.maybe_reorder();
        }
        Ok(signals)
    }

    pub(crate) fn try_eval_gate(
        &mut self,
        kind: GateKind,
        inputs: &[Bdd],
    ) -> Result<Bdd, bbec_bdd::BudgetExceeded> {
        let m = &mut self.manager;
        Ok(match kind {
            GateKind::And => m.try_and_many(inputs)?,
            GateKind::Or => m.try_or_many(inputs)?,
            GateKind::Nand => {
                let a = m.try_and_many(inputs)?;
                m.try_not(a)?
            }
            GateKind::Nor => {
                let a = m.try_or_many(inputs)?;
                m.try_not(a)?
            }
            GateKind::Xor => m.try_xor_many(inputs)?,
            GateKind::Xnor => {
                let a = m.try_xor_many(inputs)?;
                m.try_not(a)?
            }
            GateKind::Not => m.try_not(inputs[0])?,
            GateKind::Buf => inputs[0],
            GateKind::Const0 => m.constant(false),
            GateKind::Const1 => m.constant(true),
        })
    }

    fn try_eval_ternary_gate(
        &mut self,
        kind: GateKind,
        inputs: &[TernaryBdd],
    ) -> Result<TernaryBdd, bbec_bdd::BudgetExceeded> {
        type BResult<T> = Result<T, bbec_bdd::BudgetExceeded>;
        let m = &mut self.manager;
        let and_fold = |m: &mut AnyManager, inputs: &[TernaryBdd]| -> BResult<TernaryBdd> {
            let is1s: Vec<Bdd> = inputs.iter().map(|t| t.is1).collect();
            let is0s: Vec<Bdd> = inputs.iter().map(|t| t.is0).collect();
            Ok(TernaryBdd { is1: m.try_and_many(&is1s)?, is0: m.try_or_many(&is0s)? })
        };
        let or_fold = |m: &mut AnyManager, inputs: &[TernaryBdd]| -> BResult<TernaryBdd> {
            let is1s: Vec<Bdd> = inputs.iter().map(|t| t.is1).collect();
            let is0s: Vec<Bdd> = inputs.iter().map(|t| t.is0).collect();
            Ok(TernaryBdd { is1: m.try_or_many(&is1s)?, is0: m.try_and_many(&is0s)? })
        };
        let xor_fold = |m: &mut AnyManager, inputs: &[TernaryBdd]| -> BResult<TernaryBdd> {
            let mut acc = inputs[0];
            for t in &inputs[1..] {
                let a = m.try_and(acc.is1, t.is0)?;
                let b = m.try_and(acc.is0, t.is1)?;
                let c = m.try_and(acc.is0, t.is0)?;
                let d = m.try_and(acc.is1, t.is1)?;
                acc = TernaryBdd { is1: m.try_or(a, b)?, is0: m.try_or(c, d)? };
            }
            Ok(acc)
        };
        let negate = |t: TernaryBdd| TernaryBdd { is0: t.is1, is1: t.is0 };
        Ok(match kind {
            GateKind::And => and_fold(m, inputs)?,
            GateKind::Or => or_fold(m, inputs)?,
            GateKind::Nand => negate(and_fold(m, inputs)?),
            GateKind::Nor => negate(or_fold(m, inputs)?),
            GateKind::Xor => xor_fold(m, inputs)?,
            GateKind::Xnor => negate(xor_fold(m, inputs)?),
            GateKind::Not => negate(inputs[0]),
            GateKind::Buf => inputs[0],
            GateKind::Const0 => TernaryBdd { is0: m.constant(true), is1: m.constant(false) },
            GateKind::Const1 => TernaryBdd { is0: m.constant(false), is1: m.constant(true) },
        })
    }
}

/// Orders input positions by a depth-first, fanin-first walk from the
/// outputs; inputs never reached are appended in declaration order.
fn dfs_input_order(circuit: &Circuit) -> Vec<usize> {
    let mut pos_of_signal = vec![usize::MAX; circuit.signal_count()];
    for (pos, &s) in circuit.inputs().iter().enumerate() {
        pos_of_signal[s.index()] = pos;
    }
    let mut order = Vec::new();
    let mut seen_input = vec![false; circuit.inputs().len()];
    let mut seen_sig = vec![false; circuit.signal_count()];
    let mut stack: Vec<SignalId> = circuit.outputs().iter().rev().map(|&(_, s)| s).collect();
    while let Some(s) = stack.pop() {
        if std::mem::replace(&mut seen_sig[s.index()], true) {
            continue;
        }
        let pos = pos_of_signal[s.index()];
        if pos != usize::MAX && !seen_input[pos] {
            seen_input[pos] = true;
            order.push(pos);
        }
        if let Some(gate) = circuit.driver_of(s) {
            for &inp in gate.inputs.iter().rev() {
                stack.push(inp);
            }
        }
    }
    for (pos, seen) in seen_input.iter().enumerate() {
        if !seen {
            order.push(pos);
        }
    }
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use bbec_netlist::generators;

    fn settings() -> CheckSettings {
        CheckSettings { dynamic_reordering: false, ..CheckSettings::default() }
    }

    #[test]
    fn spec_bdds_match_simulation() {
        let c = generators::ripple_carry_adder(3);
        let mut ctx = SymbolicContext::new(&c, &settings());
        let outs = ctx.build_outputs(&c).unwrap();
        for bits in 0..128u32 {
            let inputs: Vec<bool> = (0..7).map(|i| bits >> i & 1 == 1).collect();
            let expect = c.eval(&inputs).unwrap();
            // Map input values onto BDD variables.
            let mut assign = vec![false; ctx.manager.var_count()];
            for (pos, &v) in ctx.input_vars().iter().enumerate() {
                assign[v.index() as usize] = inputs[pos];
            }
            for (o, &e) in outs.iter().zip(&expect) {
                assert_eq!(ctx.manager.eval(*o, &assign), e, "bits {bits:07b}");
            }
        }
    }

    #[test]
    fn partial_bdds_depend_on_z() {
        let c = generators::ripple_carry_adder(2);
        let p = crate::PartialCircuit::black_box_gates(&c, &[0]).unwrap();
        let mut ctx = SymbolicContext::new(&c, &settings());
        let sym = ctx.build_partial(&p).unwrap();
        assert_eq!(sym.all_z_vars.len(), 1);
        let z = sym.all_z_vars[0];
        // Some output must depend on Z (gate 0 feeds sum0).
        let depends = sym.outputs.iter().any(|&o| ctx.manager.support(o).contains(&z));
        assert!(depends);
    }

    #[test]
    fn zi_simulation_restores_function_when_z_composed() {
        // Substituting the removed gate's true function for Z must give back
        // the specification exactly.
        let c = generators::magnitude_comparator(3);
        let gate = 2u32;
        let p = crate::PartialCircuit::black_box_gates(&c, &[gate]).unwrap();
        let mut ctx = SymbolicContext::new(&c, &settings());
        let spec = ctx.build_outputs(&c).unwrap();
        let sym = ctx.build_partial(&p).unwrap();
        // Rebuild the removed gate's true function from the host's signal
        // BDDs (its inputs are still driven in the host).
        let removed = &c.gates()[gate as usize];
        let ins: Vec<Bdd> =
            removed.inputs.iter().map(|&s| sym.signal_bdds[s.index()].expect("driven")).collect();
        let true_fn = ctx.try_eval_gate(removed.kind, &ins).unwrap();
        let z = sym.all_z_vars[0];
        for (g, f) in sym.outputs.iter().zip(&spec) {
            let composed = ctx.manager.compose(*g, z, true_fn);
            assert_eq!(composed, *f);
        }
    }

    #[test]
    fn ternary_pairs_are_disjoint_and_sound() {
        let c = generators::ripple_carry_adder(2);
        let p = crate::PartialCircuit::black_box_gates(&c, &[1, 2]).unwrap();
        let mut ctx = SymbolicContext::new(&c, &settings());
        let sim = ctx.build_ternary(p.circuit()).unwrap();
        let pairs = sim.outputs.clone();
        for t in &pairs {
            // is0 ∧ is1 must be unsatisfiable.
            let both = ctx.manager.and(t.is0, t.is1);
            assert!(ctx.manager.is_contradiction(both));
        }
        // Cross-check against the netlist's ternary simulator.
        for bits in 0..32u32 {
            let inputs: Vec<bool> = (0..5).map(|i| bits >> i & 1 == 1).collect();
            let tv: Vec<bbec_netlist::Tv> =
                inputs.iter().map(|&b| bbec_netlist::Tv::from(b)).collect();
            let expect = p.circuit().eval_ternary(&tv).unwrap();
            let mut assign = vec![false; ctx.manager.var_count()];
            for (pos, &v) in ctx.input_vars().iter().enumerate() {
                assign[v.index() as usize] = inputs[pos];
            }
            for (t, e) in pairs.iter().zip(&expect) {
                let is0 = ctx.manager.eval(t.is0, &assign);
                let is1 = ctx.manager.eval(t.is1, &assign);
                match e {
                    bbec_netlist::Tv::Zero => assert!(is0 && !is1),
                    bbec_netlist::Tv::One => assert!(is1 && !is0),
                    bbec_netlist::Tv::X => assert!(!is0 && !is1),
                }
            }
        }
    }

    #[test]
    fn dfs_order_touches_every_input() {
        let c = generators::masked_alu14();
        let order = dfs_input_order(&c);
        let mut sorted = order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..60).collect::<Vec<_>>());
    }

    #[test]
    fn absolute_deadline_survives_rearming() {
        let s = CheckSettings {
            dynamic_reordering: false,
            deadline: Some(Instant::now() - Duration::from_millis(1)),
            ..CheckSettings::default()
        };
        // Big enough that the build charges well over 1024 apply steps
        // (the deadline is polled every 1024 steps).
        let c = generators::array_multiplier(6);
        let mut ctx = SymbolicContext::new(&c, &s);
        // Re-arming opens a fresh step window but must keep the expired
        // global deadline instead of granting a new one.
        ctx.arm_budget();
        let err = ctx.build_outputs(&c);
        assert!(
            matches!(err, Err(CheckError::BudgetExceeded(_))),
            "expired global deadline must abort the build"
        );
    }

    #[test]
    fn reordering_during_simulation_is_safe() {
        let s = CheckSettings {
            dynamic_reordering: true,
            reorder_threshold: 64, // force frequent reordering
            ..CheckSettings::default()
        };
        let c = generators::magnitude_comparator(6);
        let mut ctx = SymbolicContext::new(&c, &s);
        let outs = ctx.build_outputs(&c).unwrap();
        assert!(ctx.manager.stats().reorderings > 0, "threshold should have triggered");
        for bits in (0..4096u32).step_by(97) {
            let inputs: Vec<bool> = (0..12).map(|i| bits >> i & 1 == 1).collect();
            let expect = c.eval(&inputs).unwrap();
            let mut assign = vec![false; ctx.manager.var_count()];
            for (pos, &v) in ctx.input_vars().iter().enumerate() {
                assign[v.index() as usize] = inputs[pos];
            }
            for (o, &e) in outs.iter().zip(&expect) {
                assert_eq!(ctx.manager.eval(*o, &assign), e);
            }
        }
    }
}
