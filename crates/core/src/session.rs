//! An amortised checking session: the specification's BDDs are built once
//! and reused across many partial implementations.
//!
//! The experiment pattern of the paper — one specification, hundreds of
//! error insertions, a check per insertion — rebuilds the specification
//! BDDs from scratch on every call when using the free functions in
//! [`crate::checks`]. A [`CheckSession`] keeps one [`SymbolicContext`]
//! alive instead.
//!
//! Each checked partial implementation permanently adds its `Z` (and, for
//! the input-exact check, `I`) variables to the shared manager, so the
//! session transparently *refreshes* — rebuilds the context and the
//! specification BDDs — once the variable count grows past a budget. A
//! budget-aborted check, by contrast, needs **no** refresh: the aborted
//! check's intermediates are unprotected and a garbage collection reclaims
//! them, while the specification BDDs stay protected in the same manager.

use crate::checks::{
    self, input_exact_with, local_check_with, output_exact_with, symbolic_01x_with, CheckProbe,
};
use crate::partial::PartialCircuit;
use crate::report::{CheckError, CheckOutcome, CheckSettings, Method};
use crate::symbolic::SymbolicContext;
use bbec_bdd::Bdd;
use bbec_netlist::Circuit;

/// Reusable checking state for one specification.
#[derive(Debug)]
pub struct CheckSession {
    spec: Circuit,
    settings: CheckSettings,
    ctx: SymbolicContext,
    spec_bdds: Vec<Bdd>,
    /// Variable head-room before a refresh (beyond the primary inputs).
    var_budget: usize,
    refreshes: usize,
}

impl CheckSession {
    /// Builds the session and the specification's BDDs.
    ///
    /// # Errors
    ///
    /// [`CheckError::Netlist`] if the specification is not a complete
    /// circuit; [`CheckError::BudgetExceeded`] if building the
    /// specification BDDs already blows the configured budget.
    pub fn new(spec: Circuit, settings: CheckSettings) -> Result<CheckSession, CheckError> {
        // With sweeping on, the spec is reduced once, before its BDDs are
        // built; each checked partial is swept per call in `check`.
        let spec = if settings.sweep { bbec_netlist::strash::sweep(&spec).circuit } else { spec };
        let (ctx, spec_bdds) = Self::fresh(&spec, &settings)?;
        Ok(CheckSession { spec, settings, ctx, spec_bdds, var_budget: 512, refreshes: 0 })
    }

    fn fresh(
        spec: &Circuit,
        settings: &CheckSettings,
    ) -> Result<(SymbolicContext, Vec<Bdd>), CheckError> {
        let mut ctx = SymbolicContext::new(spec, settings);
        let probe = CheckProbe::begin(&mut ctx);
        match ctx.build_outputs(spec) {
            Ok(spec_bdds) => Ok((ctx, spec_bdds)),
            Err(e) => Err(probe.annotate(&ctx, e)),
        }
    }

    /// The checked specification.
    pub fn spec(&self) -> &Circuit {
        &self.spec
    }

    /// BDD nodes of the specification (the paper's column 4).
    pub fn spec_node_count(&self) -> usize {
        self.ctx.manager.node_count_many(&self.spec_bdds)
    }

    /// How often the session rebuilt its context (diagnostic).
    pub fn refreshes(&self) -> usize {
        self.refreshes
    }

    /// Runs one BDD-based check against a partial implementation.
    ///
    /// Supported methods: [`Method::RandomPatterns`],
    /// [`Method::Symbolic01X`], [`Method::Local`], [`Method::OutputExact`],
    /// [`Method::InputExact`]. SAT methods have no per-session state worth
    /// amortising; call [`crate::sat_checks`] directly.
    ///
    /// # Errors
    ///
    /// The underlying check's errors. A [`CheckError::BudgetExceeded`]
    /// leaves the session usable as-is — the aborted check released its
    /// protections, so a garbage collection reclaims its intermediates and
    /// the next check proceeds against the same specification BDDs.
    pub fn check(
        &mut self,
        partial: &PartialCircuit,
        method: Method,
    ) -> Result<CheckOutcome, CheckError> {
        if self.settings.sweep {
            let (swept, _) = crate::preprocess::sweep_partial(partial)?;
            return self.check_prepared(&swept, method);
        }
        self.check_prepared(partial, method)
    }

    fn check_prepared(
        &mut self,
        partial: &PartialCircuit,
        method: Method,
    ) -> Result<CheckOutcome, CheckError> {
        if method == Method::RandomPatterns {
            return checks::random_patterns(&self.spec, partial, &self.settings);
        }
        self.maybe_refresh()?;
        let ctx = &mut self.ctx;
        let spec_bdds = &self.spec_bdds;
        let spec = &self.spec;
        let result = match method {
            Method::Symbolic01X => symbolic_01x_with(ctx, spec_bdds, spec, partial),
            Method::Local => local_check_with(ctx, spec_bdds, spec, partial),
            Method::OutputExact => output_exact_with(ctx, spec_bdds, spec, partial),
            Method::InputExact => input_exact_with(ctx, spec_bdds, spec, partial),
            other => {
                Err(CheckError::InvalidPartial(format!("method {other} is not session-managed")))
            }
        };
        if matches!(result, Err(CheckError::BudgetExceeded(_))) {
            // The aborted check's intermediates are unprotected; reclaim
            // them now so they don't count against the next check's node
            // budget. No refresh — the spec BDDs are still protected.
            self.ctx.manager.collect_garbage();
        }
        result
    }

    fn maybe_refresh(&mut self) -> Result<(), CheckError> {
        if self.ctx.manager.var_count() > self.spec.inputs().len() + self.var_budget {
            self.force_refresh()?;
        }
        Ok(())
    }

    fn force_refresh(&mut self) -> Result<(), CheckError> {
        let (ctx, spec_bdds) = Self::fresh(&self.spec, &self.settings)?;
        self.ctx = ctx;
        self.spec_bdds = spec_bdds;
        self.refreshes += 1;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::Verdict;
    use bbec_netlist::generators;
    use bbec_netlist::mutate::Mutation;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn settings() -> CheckSettings {
        CheckSettings { dynamic_reordering: false, ..CheckSettings::default() }
    }

    #[test]
    fn session_matches_free_functions() {
        let spec = generators::magnitude_comparator(5);
        let mut session = CheckSession::new(spec.clone(), settings()).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let roots: Vec<_> = spec.outputs().iter().map(|&(_, s)| s).collect();
        let cone = spec.fanin_cone_gates(&roots);
        for _ in 0..8 {
            let m = Mutation::random(&spec, &cone, &mut rng).unwrap();
            let faulty = m.apply(&spec).unwrap();
            let Ok(partial) = PartialCircuit::random_black_boxes(&faulty, 0.1, 1, &mut rng) else {
                continue;
            };
            for method in
                [Method::Symbolic01X, Method::Local, Method::OutputExact, Method::InputExact]
            {
                let via_session = session.check(&partial, method).unwrap().verdict;
                let direct = match method {
                    Method::Symbolic01X => {
                        checks::symbolic_01x(&spec, &partial, &settings()).unwrap().verdict
                    }
                    Method::Local => {
                        checks::local_check(&spec, &partial, &settings()).unwrap().verdict
                    }
                    Method::OutputExact => {
                        checks::output_exact(&spec, &partial, &settings()).unwrap().verdict
                    }
                    Method::InputExact => {
                        checks::input_exact(&spec, &partial, &settings()).unwrap().verdict
                    }
                    _ => unreachable!(),
                };
                assert_eq!(via_session, direct, "{method} on {}", m.describe(&spec));
            }
        }
    }

    #[test]
    fn session_refreshes_on_variable_bloat() {
        let spec = generators::ripple_carry_adder(3);
        let mut session = CheckSession::new(spec.clone(), settings()).unwrap();
        session.var_budget = 8; // force frequent refreshes
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..12 {
            let partial = PartialCircuit::random_black_boxes(&spec, 0.2, 2, &mut rng).unwrap();
            let out = session.check(&partial, Method::InputExact).unwrap();
            assert_eq!(out.verdict, Verdict::NoErrorFound, "boxed spec is completable");
        }
        assert!(session.refreshes() > 0, "var budget should have forced refreshes");
    }

    #[test]
    fn session_survives_budget_aborts_without_refresh() -> Result<(), CheckError> {
        let spec = generators::sec32();
        let tight = CheckSettings {
            node_limit: Some(2_000), // absurdly small: every check aborts
            dynamic_reordering: false,
            ..CheckSettings::default()
        };
        // Even constructing the spec BDDs blows a 2k budget, so `new` fails
        // cleanly as a value…
        assert!(matches!(CheckSession::new(spec, tight), Err(CheckError::BudgetExceeded(_))));
        // …while a budget that admits the spec but not the expensive checks
        // aborts per-check and keeps the session usable in place.
        let spec = generators::magnitude_comparator(12);
        let medium = CheckSettings {
            node_limit: Some(3_000),
            dynamic_reordering: false,
            ..CheckSettings::default()
        };
        let mut session = CheckSession::new(spec.clone(), medium).unwrap();
        let spec_nodes = session.spec_node_count();
        let mut rng = StdRng::seed_from_u64(4);
        let partial = PartialCircuit::random_black_boxes(&spec, 0.3, 1, &mut rng).unwrap();
        let mut aborted = 0;
        for _ in 0..3 {
            match session.check(&partial, Method::InputExact) {
                Err(CheckError::BudgetExceeded(abort)) => {
                    aborted += 1;
                    assert!(!abort.reason.is_empty());
                }
                Ok(_) => {}
                // Any non-budget error is a genuine failure: propagate it
                // instead of panicking.
                Err(e) => return Err(e),
            }
            // The specification BDDs survived the abort untouched…
            assert_eq!(session.spec_node_count(), spec_nodes);
            // …and the cheap check still works right after.
            let ok = session.check(&partial, Method::Symbolic01X);
            assert!(ok.is_ok() || matches!(ok, Err(CheckError::BudgetExceeded(_))));
        }
        assert!(aborted > 0, "node budget should have fired at least once");
        assert_eq!(session.refreshes(), 0, "budget aborts must not force refreshes");
        Ok(())
    }

    #[test]
    fn spec_node_count_is_stable_across_checks() {
        let spec = generators::alu_181();
        let mut session = CheckSession::new(spec.clone(), settings()).unwrap();
        let before = session.spec_node_count();
        let mut rng = StdRng::seed_from_u64(5);
        let partial = PartialCircuit::random_black_boxes(&spec, 0.1, 1, &mut rng).unwrap();
        let _ = session.check(&partial, Method::OutputExact).unwrap();
        assert_eq!(session.spec_node_count(), before);
    }
}
