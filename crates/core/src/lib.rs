//! # bbec-core — black-box equivalence checking for partial implementations
//!
//! The primary contribution of Scholl & Becker, *"Checking Equivalence for
//! Partial Implementations"* (DAC 2001): given a complete combinational
//! specification and a partial implementation whose unfinished regions are
//! modelled as **black boxes**, decide whether the partial implementation
//! can still be extended to a correct complete design.
//!
//! The paper's ladder of checks, all available in [`checks`]:
//!
//! | Check | Power | Paper section |
//! |---|---|---|
//! | [`checks::random_patterns`] | weakest, non-symbolic baseline | Sec. 3, column `r.p.` |
//! | [`checks::symbolic_01x`] | finds all 0,1,X-visible errors (= Jain et al.) | Sec. 2.1 |
//! | [`checks::local_check`] | per-output exact (Lemma 2.1) | Sec. 2.2.1 |
//! | [`checks::output_exact`] | joint over outputs (Lemma 2.2, = Günther et al.) | Sec. 2.2.2 |
//! | [`checks::input_exact`] | exact for one box, strongest approximation else | Sec. 2.2.3, eq. (1) |
//! | [`checks::exact_decomposition`] | Theorem 2.1, brute force for tiny boxes | Sec. 2.2.3 |
//!
//! SAT-based variants of the first and fourth rung (the paper's future-work
//! arm) live in [`sat_checks`]. Around the checks sit:
//!
//! * [`preprocess`] — structural-sweeping front-end (constant propagation,
//!   identical-point merging, dead-logic removal) run before the ladder,
//!   verdict-invariant and black-box-aware,
//! * [`CheckSession`] — amortises the specification's BDDs over many checks,
//! * [`ParallelChecker`] — shards the per-output rungs over worker threads
//!   by cone of influence, one private BDD manager per worker,
//! * [`diagnose`] — fault localisation by black-boxing suspect regions
//!   (exact for single boxes by Theorem 2.2),
//! * [`unroll`] — bounded *sequential* black-box checking by time-frame
//!   expansion (the paper's second future-work item),
//! * [`samples`] — specimen circuits realising the separations of the
//!   paper's Figures 1–3.
//!
//! Every check is *sound*: it reports an error only if **no** replacement of
//! the black boxes can make the implementation equivalent to the
//! specification. The checks differ in completeness, forming the chain
//! `r.p. ⊆ 0,1,X ⊆ local ⊆ output-exact ⊆ input-exact`.
//!
//! ## Example
//!
//! ```rust
//! use bbec_netlist::Circuit;
//! use bbec_core::{PartialCircuit, checks, CheckSettings, Verdict};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // Specification: f = (a & b) | c.
//! let mut spec = Circuit::builder("spec");
//! let a = spec.input("a");
//! let b = spec.input("b");
//! let c = spec.input("c");
//! let ab = spec.and2(a, b);
//! let f = spec.or2(ab, c);
//! spec.output("f", f);
//! let spec = spec.build()?;
//!
//! // Black-box the AND gate (gate index 0): still completable.
//! let partial = PartialCircuit::black_box_gates(&spec, &[0])?;
//! let outcome = checks::input_exact(&spec, &partial, &CheckSettings::default())?;
//! assert_eq!(outcome.verdict, Verdict::NoErrorFound);
//! # Ok(())
//! # }
//! ```

pub mod cex;
pub mod checks;
pub mod diagnose;
pub mod ledger;
mod parallel;
mod partial;
pub mod preprocess;
mod report;
pub mod samples;
pub mod sat_checks;
pub mod service;
mod session;
mod symbolic;
pub mod unroll;

pub use cex::validate_counterexample;
pub use parallel::{plan_shards, ParallelChecker, Shard};
pub use partial::{convex_closure, BlackBox, PartialCircuit};
pub use preprocess::{PreprocessReport, Preprocessed};
pub use report::{
    BudgetAbort, CheckError, CheckOutcome, CheckSettings, Counterexample, Method, ResourceStats,
    Verdict,
};
pub use session::CheckSession;
pub use symbolic::{PartialSymbolic, SymbolicContext, TernaryBdd, TernarySim};
