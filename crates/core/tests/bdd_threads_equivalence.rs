//! Thread-count invariance of the shared-memory BDD engine:
//! `bdd_threads = 4` (shared table, work-stealing apply) and
//! `bdd_threads = 1` (classic sequential manager) must produce identical
//! ladder verdicts, rung outcomes and counterexamples — the engine and its
//! thread count may only change wall-clock time.
//!
//! This holds structurally: both engines build canonical complement-edge
//! BDDs with the same variable order, so every rung asks the same question
//! of the same function and every witness walk takes the same path.
//! Schedules change *when* nodes are built, never which function a root
//! denotes. Step counts are *not* deterministic under parallelism, so the
//! settings here use no step or time limits; the node limit is far above
//! what these instances allocate.
//!
//! Driven by the netlist mutation generator over 100+ seeded circuits,
//! mirroring `parallel_equivalence.rs` (job-count invariance).

use bbec_core::checks::{CheckLadder, LadderReport, StageResult};
use bbec_core::{CheckSettings, PartialCircuit, Verdict};
use bbec_netlist::{generators, Circuit, Mutation};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn settings(bdd_threads: usize) -> CheckSettings {
    CheckSettings {
        dynamic_reordering: false,
        random_patterns: 64,
        node_limit: Some(1 << 16),
        cache_bits: 14,
        bdd_threads,
        ..CheckSettings::default()
    }
}

/// A seeded instance: a spec, and a mutated + black-boxed implementation.
fn instance(spec: Circuit, seed: u64) -> Option<(Circuit, PartialCircuit)> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x7EAD);
    let roots: Vec<_> = spec.outputs().iter().map(|&(_, s)| s).collect();
    let cone = spec.fanin_cone_gates(&roots);
    // Even seeds insert an error; odd seeds stay clean, so both verdict
    // paths (early error exit and full-ladder fallthrough) are exercised.
    let faulty = if seed.is_multiple_of(2) {
        Mutation::random(&spec, &cone, &mut rng)?.apply(&spec).ok()?
    } else {
        spec.clone()
    };
    let partial =
        PartialCircuit::random_black_boxes(&faulty, 0.15, 1 + (seed % 3) as usize, &mut rng)
            .ok()?;
    Some((spec, partial))
}

/// The comparable skeleton of a report: everything except timing/stats.
fn skeleton(r: &LadderReport) -> Vec<String> {
    r.stages
        .iter()
        .map(|s| match s {
            StageResult::Finished(o) => {
                format!("{}:{:?}:{:?}", o.method, o.verdict, o.counterexample)
            }
            StageResult::BudgetExceeded { method, reason, .. } => {
                format!("{method}:budget:{reason}")
            }
        })
        .collect()
}

fn assert_thread_invariant(spec: &Circuit, partial: &PartialCircuit, label: &str) {
    let seq = CheckLadder::with_settings(settings(1)).run(spec, partial).unwrap();
    let par = CheckLadder::with_settings(settings(4)).run(spec, partial).unwrap();
    assert_eq!(seq.verdict(), par.verdict(), "verdict differs on {label}");
    assert_eq!(seq.deciding_method(), par.deciding_method(), "deciding method differs on {label}");
    assert_eq!(seq.counterexample(), par.counterexample(), "counterexample differs on {label}");
    assert_eq!(skeleton(&seq), skeleton(&par), "rung skeleton differs on {label}");
}

/// 100+ seeded mutated circuits: full ladder reports at `bdd_threads = 1`
/// and `bdd_threads = 4` are bit-identical.
#[test]
fn thread_count_invariant_on_random_logic() {
    let mut checked = 0;
    for seed in 0..110u64 {
        let spec = generators::random_logic("te", 7, 40, 3, seed);
        let Some((spec, partial)) = instance(spec, seed) else { continue };
        assert_thread_invariant(&spec, &partial, &format!("random_logic seed {seed}"));
        checked += 1;
    }
    assert!(checked >= 100, "only {checked} seeds produced instances");
}

/// Wider structured circuits (adders, comparators) agree too — deeper
/// recursions, so the work-stealing layer actually forks.
#[test]
fn thread_count_invariant_on_structured_circuits() {
    for (i, spec) in [
        generators::ripple_carry_adder(5),
        generators::magnitude_comparator(5),
        generators::array_multiplier(3),
    ]
    .into_iter()
    .enumerate()
    {
        let Some((spec, partial)) = instance(spec, i as u64) else { continue };
        assert_thread_invariant(&spec, &partial, &format!("structured #{i}"));
    }
}

/// Inserted errors that the ladder can see are found at every thread
/// count, and some instances in the sweep actually produce errors (the
/// invariance sweep above must not be vacuous).
#[test]
fn error_instances_are_represented() {
    let mut errors = 0;
    for seed in (0..60u64).step_by(2) {
        let spec = generators::random_logic("te", 7, 40, 3, seed);
        let Some((spec, partial)) = instance(spec, seed) else { continue };
        let report = CheckLadder::with_settings(settings(4)).run(&spec, &partial).unwrap();
        if report.verdict() == Verdict::ErrorFound {
            errors += 1;
        }
    }
    assert!(errors >= 5, "only {errors} error instances in the sweep");
}
