//! Job-count invariance of the parallel check engine: `jobs = 4` and
//! `jobs = 1` must produce identical ladder verdicts, stage outcomes and
//! counterexamples — the worker count may only change wall-clock time.
//!
//! Driven by the netlist mutation generator over 100+ seeded circuits,
//! covering both overlapping-cone circuits (which merge into few shards)
//! and disjoint-cone circuits (which shard one-per-output).

use bbec_core::checks::{LadderReport, StageResult};
use bbec_core::{CheckSettings, ParallelChecker, PartialCircuit, Verdict};
use bbec_netlist::{generators, Circuit, Mutation};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn settings() -> CheckSettings {
    CheckSettings { dynamic_reordering: false, random_patterns: 64, ..CheckSettings::default() }
}

/// A seeded instance: a spec, and a mutated + black-boxed implementation.
fn instance(spec: Circuit, seed: u64) -> Option<(Circuit, PartialCircuit)> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5EED);
    let roots: Vec<_> = spec.outputs().iter().map(|&(_, s)| s).collect();
    let cone = spec.fanin_cone_gates(&roots);
    // Even seeds insert an error; odd seeds stay clean, so both verdict
    // paths (error merge and full-ladder fallthrough) are exercised.
    let faulty = if seed.is_multiple_of(2) {
        Mutation::random(&spec, &cone, &mut rng)?.apply(&spec).ok()?
    } else {
        spec.clone()
    };
    let partial =
        PartialCircuit::random_black_boxes(&faulty, 0.15, 1 + (seed % 3) as usize, &mut rng)
            .ok()?;
    Some((spec, partial))
}

/// The comparable skeleton of a report: everything except timing/stats.
fn skeleton(r: &LadderReport) -> Vec<String> {
    r.stages
        .iter()
        .map(|s| match s {
            StageResult::Finished(o) => {
                format!("{}:{:?}:{:?}", o.method, o.verdict, o.counterexample)
            }
            StageResult::BudgetExceeded { method, reason, .. } => {
                format!("{method}:budget:{reason}")
            }
        })
        .collect()
}

fn assert_job_invariant(spec: &Circuit, partial: &PartialCircuit, label: &str) {
    let seq = ParallelChecker::new(settings(), 1).run(spec, partial).unwrap();
    let par = ParallelChecker::new(settings(), 4).run(spec, partial).unwrap();
    assert_eq!(seq.verdict(), par.verdict(), "verdict differs on {label}");
    assert_eq!(seq.deciding_method(), par.deciding_method(), "deciding method differs on {label}");
    assert_eq!(seq.counterexample(), par.counterexample(), "counterexample differs on {label}");
    assert_eq!(skeleton(&seq), skeleton(&par), "stage skeleton differs on {label}");
}

/// 100+ seeded mutated circuits with overlapping cones: reports at
/// `jobs = 1` and `jobs = 4` are identical.
#[test]
fn jobs_invariant_on_random_logic() {
    let mut checked = 0;
    for seed in 0..110u64 {
        let spec = generators::random_logic("pe", 7, 40, 3, seed);
        let Some((spec, partial)) = instance(spec, seed) else { continue };
        assert_job_invariant(&spec, &partial, &format!("random_logic seed {seed}"));
        checked += 1;
    }
    assert!(checked >= 100, "only {checked} seeds produced instances");
}

/// Disjoint-cone circuits (one shard per output — the maximally parallel
/// decomposition) stay job-count invariant too.
#[test]
fn jobs_invariant_on_disjoint_cones() {
    for seed in 0..12u64 {
        let spec = generators::disjoint_cones(5, 4, 10, seed);
        let Some((spec, partial)) = instance(spec, seed) else { continue };
        assert_job_invariant(&spec, &partial, &format!("disjoint_cones seed {seed}"));
    }
}

/// Inserted errors that the ladder can see are found at every job count,
/// and at least some instances in the sweep actually produce errors (the
/// invariance tests above must not be vacuous).
#[test]
fn error_instances_are_represented() {
    let mut errors = 0;
    for seed in (0..60u64).step_by(2) {
        let spec = generators::random_logic("pe", 7, 40, 3, seed);
        let Some((spec, partial)) = instance(spec, seed) else { continue };
        let report = ParallelChecker::new(settings(), 4).run(&spec, &partial).unwrap();
        if report.verdict() == Verdict::ErrorFound {
            errors += 1;
        }
    }
    assert!(errors >= 5, "only {errors} error instances in the sweep");
}
