//! Property-based tests of the paper's central claims, driven by random
//! circuits, random mutations and random black-box selections.

use bbec_core::{checks, samples, CheckSettings, PartialCircuit, Verdict};
use bbec_netlist::mutate::Mutation;
use bbec_netlist::{generators, Circuit};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn settings() -> CheckSettings {
    CheckSettings { dynamic_reordering: false, random_patterns: 250, ..CheckSettings::default() }
}

fn random_instance(
    seed: u64,
    boxes: usize,
    mutate: bool,
) -> Option<(Circuit, PartialCircuit, String)> {
    let spec = generators::random_logic("prop", 7, 40, 3, seed);
    let mut rng = StdRng::seed_from_u64(seed ^ 0xABCD);
    let (faulty, label) = if mutate {
        let roots: Vec<_> = spec.outputs().iter().map(|&(_, s)| s).collect();
        let cone = spec.fanin_cone_gates(&roots);
        let m = Mutation::random(&spec, &cone, &mut rng)?;
        (m.apply(&spec).ok()?, m.describe(&spec))
    } else {
        (spec.clone(), "unmodified".to_string())
    };
    let partial = PartialCircuit::random_black_boxes(&faulty, 0.2, boxes, &mut rng).ok()?;
    Some((spec, partial, label))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Soundness: black-boxing an unmodified specification is always
    /// completable — no check may report an error, with 1, 2 or 3 boxes.
    #[test]
    fn no_check_false_alarms(seed in 0u64..10_000, boxes in 1usize..4) {
        let Some((spec, partial, _)) = random_instance(seed, boxes, false) else {
            return Ok(());
        };
        let s = settings();
        prop_assert_eq!(
            checks::random_patterns(&spec, &partial, &s).unwrap().verdict,
            Verdict::NoErrorFound
        );
        prop_assert_eq!(
            checks::symbolic_01x(&spec, &partial, &s).unwrap().verdict,
            Verdict::NoErrorFound
        );
        prop_assert_eq!(
            checks::local_check(&spec, &partial, &s).unwrap().verdict,
            Verdict::NoErrorFound
        );
        prop_assert_eq!(
            checks::output_exact(&spec, &partial, &s).unwrap().verdict,
            Verdict::NoErrorFound
        );
        prop_assert_eq!(
            checks::input_exact(&spec, &partial, &s).unwrap().verdict,
            Verdict::NoErrorFound
        );
    }

    /// Ladder monotonicity: a weaker check convicting implies every
    /// stronger check convicts (r.p. ⊆ 0,1,X ⊆ local ⊆ oe ⊆ ie).
    #[test]
    fn ladder_is_monotone(seed in 0u64..10_000, boxes in 1usize..4) {
        let Some((spec, partial, label)) = random_instance(seed, boxes, true) else {
            return Ok(());
        };
        let s = settings();
        let rp = checks::random_patterns(&spec, &partial, &s).unwrap().verdict;
        let x01 = checks::symbolic_01x(&spec, &partial, &s).unwrap().verdict;
        let loc = checks::local_check(&spec, &partial, &s).unwrap().verdict;
        let oe = checks::output_exact(&spec, &partial, &s).unwrap().verdict;
        let ie = checks::input_exact(&spec, &partial, &s).unwrap().verdict;
        let rank = |v: Verdict| u8::from(v == Verdict::ErrorFound);
        prop_assert!(rank(rp) <= rank(x01), "r.p. > 01x on {label}");
        prop_assert!(rank(x01) <= rank(loc), "01x > local on {label}");
        prop_assert!(rank(loc) <= rank(oe), "local > oe on {label}");
        prop_assert!(rank(oe) <= rank(ie), "oe > ie on {label}");
    }

    /// Witness validity: whenever a check hands back a counterexample, the
    /// implementation output it names is definite and wrong at that input.
    #[test]
    fn counterexamples_are_genuine(seed in 0u64..10_000) {
        let Some((spec, partial, label)) = random_instance(seed, 1, true) else {
            return Ok(());
        };
        let s = settings();
        for outcome in [
            checks::random_patterns(&spec, &partial, &s).unwrap(),
            checks::symbolic_01x(&spec, &partial, &s).unwrap(),
        ] {
            if let Some(cex) = &outcome.counterexample {
                let tv: Vec<bbec_netlist::Tv> =
                    cex.inputs.iter().map(|&b| bbec_netlist::Tv::from(b)).collect();
                let got = partial.circuit().eval_ternary(&tv).unwrap();
                let expect = spec.eval(&cex.inputs).unwrap();
                let j = cex.output.expect("these checks name the output");
                prop_assert_eq!(
                    got[j].to_bool(),
                    Some(!expect[j]),
                    "{} witness bogus on {}",
                    outcome.method,
                    &label
                );
            }
        }
    }

    /// Theorem 2.2 at property scale: for single tiny boxes the input-exact
    /// verdict coincides with brute-force completability.
    #[test]
    fn input_exact_is_exact_for_one_box(seed in 0u64..10_000) {
        let spec = generators::random_logic("ex", 5, 22, 2, seed);
        let mut rng = StdRng::seed_from_u64(seed);
        let roots: Vec<_> = spec.outputs().iter().map(|&(_, s)| s).collect();
        let cone = spec.fanin_cone_gates(&roots);
        let Some(m) = Mutation::random(&spec, &cone, &mut rng) else {
            return Ok(());
        };
        let faulty = m.apply(&spec).unwrap();
        use rand::Rng as _;
        let g = cone[rng.random_range(0..cone.len())];
        let Ok(partial) = PartialCircuit::black_box_gates(&faulty, &[g]) else {
            return Ok(());
        };
        let s = settings();
        let Ok(exact) = checks::exact_decomposition(&spec, &partial, &s, 20) else {
            return Ok(()); // over budget: skip
        };
        let ie = checks::input_exact(&spec, &partial, &s).unwrap().verdict;
        prop_assert_eq!(
            ie == Verdict::NoErrorFound,
            exact.is_completable(),
            "Theorem 2.2 violated on {}",
            m.describe(&spec)
        );
    }

    /// Structural invariants of random box selections: convex, disjoint,
    /// topologically ordered, correct totals.
    #[test]
    fn random_boxes_are_well_formed(seed in 0u64..10_000, boxes in 1usize..6) {
        let spec = generators::random_logic("shape", 8, 60, 4, seed);
        let mut rng = StdRng::seed_from_u64(seed);
        let sets = PartialCircuit::random_convex_partition(&spec, 0.25, boxes, &mut rng);
        // Disjoint and within range.
        let mut seen = std::collections::HashSet::new();
        for set in &sets {
            for &g in set {
                prop_assert!((g as usize) < spec.gates().len());
                prop_assert!(seen.insert(g), "gate {g} in two boxes");
            }
        }
        // The partition must always produce a valid PartialCircuit (all
        // structural checks inside `new` pass) unless a box is unobservable.
        match PartialCircuit::black_box_partition(&spec, &sets) {
            Ok(p) => prop_assert_eq!(p.boxes().len(), sets.len()),
            Err(e) => prop_assert!(
                e.to_string().contains("no observable output"),
                "unexpected rejection: {e}"
            ),
        }
    }
}

/// Deterministic regression: the five specimen circuits keep their exact
/// ladder positions (the paper's Figures 1–3) — also covered in unit tests,
/// repeated here as an integration-level canary.
#[test]
fn figure_separations_regression() {
    let s = settings();
    let (spec, partial) = samples::detected_only_by_input_exact();
    assert_eq!(checks::output_exact(&spec, &partial, &s).unwrap().verdict, {
        Verdict::NoErrorFound
    });
    assert_eq!(checks::input_exact(&spec, &partial, &s).unwrap().verdict, Verdict::ErrorFound);
}
