//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no registry access, so this crate implements
//! the subset of the proptest 1.x API the bbec property tests use:
//! strategies over ranges and tuples, `prop_map`, `prop_recursive`,
//! `prop_oneof!`, `collection::vec`, and the `proptest!` test macro with
//! `ProptestConfig::with_cases`. Sampling is deterministic (seeded per test
//! name) and failures are reported without shrinking.

pub mod test_runner {
    //! Test execution: config, RNG and failure type.

    /// Per-test configuration (subset of proptest's).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases to run per test.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    impl ProptestConfig {
        /// A config running `cases` random cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    /// A failed test case (carries the formatted assertion message).
    #[derive(Debug)]
    pub struct TestCaseError(pub String);

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.0)
        }
    }

    /// Deterministic SplitMix64 generator seeded from the test name.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// A generator whose stream depends only on `name`.
        pub fn deterministic(name: &str) -> Self {
            // FNV-1a over the test name gives a stable per-test seed.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng { state: h }
        }

        /// The next raw 64-bit word.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// A uniform value in `0..bound` (`bound > 0`).
        pub fn below(&mut self, bound: u64) -> u64 {
            debug_assert!(bound > 0);
            ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
        }
    }
}

pub mod strategy {
    //! Strategy combinators.

    use super::test_runner::TestRng;
    use std::rc::Rc;

    /// A recipe for generating random values of `Self::Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Applies `f` to every generated value.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Grows recursive structures: up to `depth` applications of
        /// `recurse` over `self` as the leaf strategy. The `_desired_size`
        /// and `_expected_branch` hints are accepted for API compatibility
        /// and ignored.
        fn prop_recursive<S, F>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch: u32,
            recurse: F,
        ) -> Recursive<Self::Value>
        where
            Self: Sized + 'static,
            S: Strategy<Value = Self::Value> + 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> S + 'static,
        {
            Recursive {
                base: self.boxed(),
                recurse: Rc::new(move |inner| recurse(inner).boxed()),
                depth,
            }
        }

        /// Type-erases the strategy (cheaply clonable).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Rc::new(self))
        }
    }

    /// A clonable, type-erased strategy.
    pub struct BoxedStrategy<T>(Rc<dyn Strategy<Value = T>>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy(Rc::clone(&self.0))
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            self.0.sample(rng)
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn sample(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// See [`Strategy::prop_recursive`].
    pub struct Recursive<T> {
        base: BoxedStrategy<T>,
        recurse: Rc<dyn Fn(BoxedStrategy<T>) -> BoxedStrategy<T>>,
        depth: u32,
    }

    impl<T: 'static> Strategy for Recursive<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            // Random tower height keeps generated sizes varied, like
            // proptest's probabilistic recursion.
            let height = rng.below(u64::from(self.depth) + 1) as u32;
            let mut s = self.base.clone();
            for _ in 0..height {
                s = (self.recurse)(s.clone());
            }
            s.sample(rng)
        }
    }

    /// Uniform choice among type-erased alternatives (`prop_oneof!`).
    pub struct Union<T>(pub Vec<BoxedStrategy<T>>);

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            assert!(!self.0.is_empty(), "prop_oneof! needs at least one arm");
            let i = rng.below(self.0.len() as u64) as usize;
            self.0[i].sample(rng)
        }
    }

    /// A strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "cannot sample empty range");
                    let span = (self.end as u64).wrapping_sub(self.start as u64);
                    self.start + rng.below(span) as $t
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "cannot sample empty range");
                    let span = (end as u64).wrapping_sub(start as u64).wrapping_add(1);
                    if span == 0 {
                        return rng.next_u64() as $t;
                    }
                    start + rng.below(span) as $t
                }
            }
        )*};
    }

    impl_range_strategy!(usize, u64, u32, u16, u8);

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident . $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
    }

    /// Types with a canonical strategy ([`super::prelude::any`]).
    pub trait Arbitrary: Sized {
        /// The canonical strategy's concrete type.
        type Strategy: Strategy<Value = Self>;
        /// The canonical strategy for this type.
        fn arbitrary() -> Self::Strategy;
    }

    /// Uniform `bool`.
    #[derive(Debug, Clone, Copy)]
    pub struct AnyBool;

    impl Strategy for AnyBool {
        type Value = bool;
        fn sample(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for bool {
        type Strategy = AnyBool;
        fn arbitrary() -> AnyBool {
            AnyBool
        }
    }
}

pub mod collection {
    //! Collection strategies.

    use super::strategy::Strategy;
    use super::test_runner::TestRng;

    /// `vec(element, len_range)`: a vector whose length is drawn from
    /// `len_range` and whose elements are drawn from `element`.
    pub fn vec<S: Strategy>(element: S, len: core::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    /// See [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        len: core::ops::Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.clone().sample(rng);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// The canonical strategy for a type (subset: `bool`).
pub fn any<T: strategy::Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

pub use strategy::{BoxedStrategy, Just, Strategy};

pub mod prelude {
    //! Glob-import surface mirroring `proptest::prelude`.

    pub use crate::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Declares property tests: each `name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` deterministic random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { $crate::test_runner::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($cfg:expr; $($(#[$attr:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$attr])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let mut rng = $crate::test_runner::TestRng::deterministic(concat!(
                    module_path!(), "::", stringify!($name)
                ));
                for case in 0..config.cases {
                    $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut rng);)+
                    let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| {
                            $body
                            #[allow(unreachable_code)]
                            Ok(())
                        })();
                    if let Err(e) = outcome {
                        panic!(
                            "property failed at case {} of {}: {}\n\
                             (offline proptest stand-in: deterministic cases, no shrinking)",
                            case + 1,
                            config.cases,
                            e
                        );
                    }
                }
            }
        )*
    };
}

/// `prop_assert!(cond, ...)`: fails the current case without panicking the
/// generator loop machinery.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError(
                format!($($fmt)*),
            ));
        }
    };
}

/// `prop_assert_eq!(a, b, ...)`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, "assertion failed: {:?} != {:?}", a, b);
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, $($fmt)*);
    }};
}

/// `prop_assert_ne!(a, b, ...)`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a != b, "assertion failed: both sides are {:?}", a);
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a != b, $($fmt)*);
    }};
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union(vec![$($crate::strategy::Strategy::boxed($arm)),+])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_and_tuples_sample_in_bounds() {
        let mut rng = TestRng::deterministic("t1");
        let s = (0..10usize, 5..=6u32);
        for _ in 0..100 {
            let (a, b) = s.sample(&mut rng);
            assert!(a < 10);
            assert!((5..=6).contains(&b));
        }
    }

    #[test]
    fn map_and_oneof() {
        let mut rng = TestRng::deterministic("t2");
        let s = prop_oneof![
            (0..5usize).prop_map(|x| x * 2),
            (10..12usize).prop_map(|x| x + 100),
        ];
        for _ in 0..100 {
            let v = s.sample(&mut rng);
            assert!(v % 2 == 0 && v < 10 || (110..112).contains(&v));
        }
    }

    #[test]
    fn recursive_terminates() {
        #[derive(Debug)]
        enum E {
            Leaf(usize),
            Pair(Box<E>, Box<E>),
        }
        fn depth(e: &E) -> u32 {
            match e {
                E::Leaf(_) => 0,
                E::Pair(a, b) => 1 + depth(a).max(depth(b)),
            }
        }
        let leaf = (0..4usize).prop_map(E::Leaf);
        let s = leaf.prop_recursive(4, 16, 2, |inner| {
            (inner.clone(), inner).prop_map(|(a, b)| E::Pair(Box::new(a), Box::new(b)))
        });
        let mut rng = TestRng::deterministic("t3");
        let mut max_seen = 0;
        for _ in 0..200 {
            max_seen = max_seen.max(depth(&s.sample(&mut rng)));
        }
        assert!(max_seen >= 1, "recursion never fired");
        assert!(max_seen <= 4, "depth bound violated");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn macro_round_trip(a in 0..100u64, v in crate::collection::vec(any::<bool>(), 1..5)) {
            prop_assert!(a < 100);
            prop_assert!(!v.is_empty() && v.len() < 5);
            prop_assert_eq!(a, a);
            prop_assert_ne!(v.len(), 0);
        }
    }
}
