//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no registry access, so this crate provides the
//! subset of the criterion 0.5 API the bbec benches use: `Criterion`,
//! `benchmark_group`/`bench_function`, `Bencher::iter` and the
//! `criterion_group!`/`criterion_main!` macros. Instead of statistical
//! sampling it times a small fixed number of iterations and prints the mean
//! — enough to eyeball regressions and to smoke-run benches in CI. Passing
//! `--test` (as `cargo test --benches` does) runs each closure exactly once.

use std::time::Instant;

/// Top-level benchmark driver.
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        let test_mode = std::env::args().any(|a| a == "--test");
        Criterion { sample_size: 10, test_mode }
    }
}

impl Criterion {
    /// Runs a single named benchmark.
    pub fn bench_function<F>(&mut self, name: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&name.into(), self.sample_size, self.test_mode, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { parent: self, name: name.into(), sample_size: None }
    }
}

/// A group of related benchmarks sharing a name prefix.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    parent: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the iteration count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n);
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<F>(&mut self, name: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, name.into());
        let n = self.sample_size.unwrap_or(self.parent.sample_size);
        run_one(&full, n, self.parent.test_mode, f);
        self
    }

    /// Ends the group (kept for API compatibility).
    pub fn finish(self) {}
}

/// Passed to each benchmark closure; call [`Bencher::iter`] with the code
/// under measurement.
#[derive(Debug, Default)]
pub struct Bencher {
    iters: usize,
    total_nanos: u128,
}

impl Bencher {
    /// Times `iters` invocations of `f`.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(f());
        }
        self.total_nanos = start.elapsed().as_nanos();
    }
}

fn run_one<F: FnMut(&mut Bencher)>(name: &str, sample_size: usize, test_mode: bool, mut f: F) {
    let iters = if test_mode { 1 } else { sample_size };
    let mut b = Bencher { iters, total_nanos: 0 };
    f(&mut b);
    if test_mode {
        println!("bench {name}: ok (test mode)");
    } else if b.iters > 0 {
        let mean = b.total_nanos / b.iters as u128;
        println!("bench {name}: mean {:.3} ms over {} iters", mean as f64 / 1e6, b.iters);
    }
}

/// Re-export matching criterion's (deprecated) `criterion::black_box`.
pub use std::hint::black_box;

/// Bundles benchmark functions into a single runner function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($bench:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $($bench(&mut c);)+
        }
    };
}

/// Declares `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_closure() {
        let mut c = Criterion { sample_size: 3, test_mode: false };
        let mut runs = 0;
        c.bench_function("t", |b| {
            b.iter(|| runs += 1);
        });
        assert_eq!(runs, 3);
    }

    #[test]
    fn group_sample_size_applies() {
        let mut c = Criterion { sample_size: 10, test_mode: false };
        let mut runs = 0;
        {
            let mut g = c.benchmark_group("g");
            g.sample_size(2);
            g.bench_function("t", |b| b.iter(|| runs += 1));
            g.finish();
        }
        assert_eq!(runs, 2);
    }
}
