//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no registry access, so this crate provides the
//! (small, fully deterministic) subset of the rand 0.9 API that the bbec
//! workspace actually uses: a seedable `StdRng`, `random_range` /
//! `random_bool`, and Fisher–Yates `shuffle`. The generator is SplitMix64 —
//! statistically fine for test-input generation, not cryptographic.

/// Seedable generators (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// The random-value interface (subset of `rand::Rng`).
pub trait Rng {
    /// The raw 64-bit output of the generator.
    fn next_u64(&mut self) -> u64;

    /// A uniform value in `range` (which must be non-empty).
    fn random_range<T, R>(&mut self, range: R) -> T
    where
        R: distr::SampleRange<T>,
    {
        range.sample(&mut |bound| bounded(self.next_u64(), bound))
    }

    /// `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p));
        // 53 uniform mantissa bits, the classic [0, 1) construction.
        let u = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        u < p
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Maps a raw 64-bit word to `0..bound` without noticeable bias.
/// (128-bit multiply-shift; bias is at most `bound / 2^64`.)
fn bounded(word: u64, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    ((u128::from(word) * u128::from(bound)) >> 64) as u64
}

pub mod rngs {
    use super::{Rng, SeedableRng};

    /// Deterministic 64-bit generator (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

pub mod distr {
    //! Range sampling (subset of `rand::distr`).

    /// A range that can produce a uniform sample of `T`.
    ///
    /// `draw(bound)` must return a uniform value in `0..bound`.
    pub trait SampleRange<T> {
        /// Samples the range using the supplied bounded-draw primitive.
        fn sample(self, draw: &mut dyn FnMut(u64) -> u64) -> T;
    }

    macro_rules! impl_sample_range {
        ($($t:ty),*) => {$(
            impl SampleRange<$t> for core::ops::Range<$t> {
                fn sample(self, draw: &mut dyn FnMut(u64) -> u64) -> $t {
                    assert!(self.start < self.end, "cannot sample empty range");
                    let span = (self.end as u64).wrapping_sub(self.start as u64);
                    (self.start as u64).wrapping_add(draw(span)) as $t
                }
            }
            impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
                fn sample(self, draw: &mut dyn FnMut(u64) -> u64) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "cannot sample empty range");
                    let span = (end as u64).wrapping_sub(start as u64).wrapping_add(1);
                    if span == 0 {
                        // Full u64 domain: the raw draw is already uniform.
                        return draw(u64::MAX) as $t;
                    }
                    (start as u64).wrapping_add(draw(span)) as $t
                }
            }
        )*};
    }

    impl_sample_range!(usize, u64, u32, u16, u8, isize, i64, i32, i16, i8);
}

pub mod seq {
    //! Slice helpers (subset of `rand::seq`).

    use super::Rng;

    /// In-place random reordering of slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Fisher–Yates shuffle.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly chosen element, or `None` if empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.random_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.random_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: usize = rng.random_range(3..17);
            assert!((3..17).contains(&x));
            let y: u32 = rng.random_range(0..=5);
            assert!(y <= 5);
        }
    }

    #[test]
    fn bool_probability_extremes() {
        let mut rng = StdRng::seed_from_u64(9);
        assert!((0..100).all(|_| !rng.random_bool(0.0)));
        assert!((0..100).all(|_| rng.random_bool(1.0)));
        let heads = (0..10_000).filter(|_| rng.random_bool(0.5)).count();
        assert!((4_000..6_000).contains(&heads), "suspicious coin: {heads}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert!(v.choose(&mut rng).is_some());
        let empty: [u32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
